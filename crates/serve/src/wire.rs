//! The `omnet serve` wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON (see DESIGN.md §16 for the layout and
//! compatibility rules). Requests name a dataset; responses carry either
//! typed answers (mirroring [`QueryResponse`] field by field) or typed
//! errors (mirroring [`QueryError`]), so a remote client reconstructs
//! exactly the values an in-process [`crate::Engine`] would have returned —
//! rendering them byte-identically.
//!
//! The JSON codec is hand-rolled (flat recursive descent, no external
//! dependencies) and numeric fidelity is load-bearing: `f64`s are written
//! with Rust's shortest-roundtrip formatting and parsed back exactly, and
//! `u64`s are carried as raw integer tokens, never through an `f64`.
//! Non-finite times (`Time::INF` / `Dur::INF`) serialize as `null` — JSON
//! has no infinity literal — and decode back to the infinities.

use crate::engine::DeltaApplied;
use crate::query::{
    DeliveryAnswer, DiameterAnswer, PathAnswer, PathHop, QueryError, QueryResponse, StatsAnswer,
};
use omnet_core::{ArcPruning, HopBound, LevelStorage, ProfileOptions};
use omnet_temporal::{Contact, ContactKey, Dur, Interval, NodeId, Time};
use std::fmt;
use std::fmt::Write as _;
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload size. A length prefix beyond this is
/// rejected before any allocation — garbage (or a non-protocol peer)
/// cannot make the server reserve gigabytes.
pub const MAX_FRAME: usize = 64 << 20;

/// A wire-layer failure: transport, framing, or message shape. Query-level
/// failures are *not* wire errors — they travel inside [`Response`] as
/// typed [`QueryError`]s.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket or stream failed.
    Io(std::io::Error),
    /// A frame announced a payload larger than [`MAX_FRAME`].
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
    },
    /// The payload was not valid JSON, or valid JSON of the wrong shape.
    Malformed {
        /// What was being decoded when the payload stopped making sense.
        context: &'static str,
    },
    /// The server answered with a protocol-level error (unknown dataset,
    /// unsupported operation, shutdown in progress).
    Protocol {
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Malformed { context } => write!(f, "malformed frame: {context}"),
            WireError::Protocol { message } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the peer closed the stream cleanly
/// *between* frames; EOF inside a frame is an [`WireError::Io`] error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame header",
            )));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw source token so integers
/// round-trip at full `u64` precision and floats at full shortest-form
/// fidelity — nothing is funneled through a lossy intermediate.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (e.g. `-1.5e3`, `18446744073709551615`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    fn u32(v: u32) -> Json {
        Json::Num(v.to_string())
    }

    /// Finite floats as shortest-roundtrip tokens; non-finite as `null`.
    fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// Field lookup on an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursion ceiling for the parser — protocol messages are at most a few
/// levels deep, so anything deeper is garbage, not data.
const MAX_DEPTH: u32 = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn malformed(context: &'static str) -> WireError {
    WireError::Malformed { context }
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, context: &'static str) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(malformed(context))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, WireError> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(malformed("unknown literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(malformed("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(malformed("unexpected byte")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, WireError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(malformed("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, WireError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(malformed("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| malformed("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(malformed("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), WireError> {
        let Some(b) = self.peek() else {
            return Err(malformed("truncated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                        return Err(malformed("lone high surrogate"));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(malformed("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or(malformed("invalid code point"))?);
            }
            _ => return Err(malformed("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or(malformed("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| malformed("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| malformed("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(malformed("number without digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(malformed("number with empty fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(malformed("number with empty exponent"));
            }
        }
        // The slice is ASCII by construction.
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| malformed("number token"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

/// Parses one JSON document; trailing non-whitespace is rejected.
pub fn parse_json(bytes: &[u8]) -> Result<Json, WireError> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(malformed("trailing bytes after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Typed field accessors
// ---------------------------------------------------------------------------

fn field<'a>(j: &'a Json, key: &'static str) -> Result<&'a Json, WireError> {
    j.get(key).ok_or(WireError::Malformed { context: key })
}

fn get_str(j: &Json, key: &'static str) -> Result<String, WireError> {
    match field(j, key)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(WireError::Malformed { context: key }),
    }
}

fn get_bool(j: &Json, key: &'static str) -> Result<bool, WireError> {
    match field(j, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(WireError::Malformed { context: key }),
    }
}

fn num_u64(j: &Json, key: &'static str) -> Result<u64, WireError> {
    match j {
        Json::Num(raw) => raw
            .parse()
            .map_err(|_| WireError::Malformed { context: key }),
        _ => Err(WireError::Malformed { context: key }),
    }
}

fn get_u64(j: &Json, key: &'static str) -> Result<u64, WireError> {
    num_u64(field(j, key)?, key)
}

fn get_u32(j: &Json, key: &'static str) -> Result<u32, WireError> {
    u32::try_from(get_u64(j, key)?).map_err(|_| WireError::Malformed { context: key })
}

fn get_usize(j: &Json, key: &'static str) -> Result<usize, WireError> {
    usize::try_from(get_u64(j, key)?).map_err(|_| WireError::Malformed { context: key })
}

fn num_f64(j: &Json, key: &'static str) -> Result<f64, WireError> {
    match j {
        Json::Num(raw) => raw
            .parse()
            .map_err(|_| WireError::Malformed { context: key }),
        _ => Err(WireError::Malformed { context: key }),
    }
}

fn get_f64(j: &Json, key: &'static str) -> Result<f64, WireError> {
    num_f64(field(j, key)?, key)
}

fn get_arr<'a>(j: &'a Json, key: &'static str) -> Result<&'a [Json], WireError> {
    match field(j, key)? {
        Json::Arr(items) => Ok(items),
        _ => Err(WireError::Malformed { context: key }),
    }
}

/// `null` carries `Time::INF`.
fn time_json(t: Time) -> Json {
    Json::f64(t.as_secs())
}

fn get_time(j: &Json, key: &'static str) -> Result<Time, WireError> {
    match field(j, key)? {
        Json::Null => Ok(Time::INF),
        v => Ok(Time::secs(num_f64(v, key)?)),
    }
}

/// `null` carries `Dur::INF`.
fn dur_json(d: Dur) -> Json {
    Json::f64(d.as_secs())
}

fn get_dur(j: &Json, key: &'static str) -> Result<Dur, WireError> {
    match field(j, key)? {
        Json::Null => Ok(Dur::INF),
        v => Ok(Dur::secs(num_f64(v, key)?)),
    }
}

/// `null` carries `HopBound::Unlimited`.
fn bound_json(b: HopBound) -> Json {
    match b {
        HopBound::Unlimited => Json::Null,
        HopBound::AtMost(k) => Json::usize(k),
    }
}

fn get_bound(j: &Json, key: &'static str) -> Result<HopBound, WireError> {
    match field(j, key)? {
        Json::Null => Ok(HopBound::Unlimited),
        v => {
            let k = num_u64(v, key)?;
            let k = usize::try_from(k).map_err(|_| WireError::Malformed { context: key })?;
            Ok(HopBound::AtMost(k))
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request. The wire form is a JSON object with an `"op"` field
/// selecting the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// List the datasets the server is routing to.
    List,
    /// Answer a batch of query lines (the `Query::parse_line` grammar)
    /// against one dataset. Blank and `#`-comment lines produce no result
    /// slot — exactly like the local `omnet query --stdin` batch path.
    Query {
        /// Registry name of the target dataset.
        dataset: String,
        /// Query lines, in order.
        lines: Vec<String>,
    },
    /// Apply a contact delta to one (trace-backed) dataset — the POST-style
    /// mutation on the wire. All-or-nothing, key-epoch checked.
    Delta {
        /// Registry name of the target dataset.
        dataset: String,
        /// The key epoch the removal keys were minted against.
        key_epoch: u64,
        /// Contact keys to remove.
        remove: Vec<u32>,
        /// Contacts to append, as `(a, b, start-secs, end-secs)`.
        append: Vec<Contact>,
    },
}

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let j = match req {
        Request::List => Json::Obj(vec![("op".into(), Json::str("list"))]),
        Request::Query { dataset, lines } => Json::Obj(vec![
            ("op".into(), Json::str("query")),
            ("dataset".into(), Json::str(dataset)),
            (
                "lines".into(),
                Json::Arr(lines.iter().map(|l| Json::str(l)).collect()),
            ),
        ]),
        Request::Delta {
            dataset,
            key_epoch,
            remove,
            append,
        } => Json::Obj(vec![
            ("op".into(), Json::str("delta")),
            ("dataset".into(), Json::str(dataset)),
            ("key_epoch".into(), Json::u64(*key_epoch)),
            (
                "remove".into(),
                Json::Arr(remove.iter().map(|&k| Json::u32(k)).collect()),
            ),
            (
                "append".into(),
                Json::Arr(
                    append
                        .iter()
                        .map(|c| {
                            Json::Arr(vec![
                                Json::u32(c.a.0),
                                Json::u32(c.b.0),
                                Json::f64(c.start().as_secs()),
                                Json::f64(c.end().as_secs()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    };
    j.render().into_bytes()
}

/// Decodes a frame payload into a request.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let j = parse_json(bytes)?;
    match get_str(&j, "op")?.as_str() {
        "list" => Ok(Request::List),
        "query" => {
            let lines = get_arr(&j, "lines")?
                .iter()
                .map(|l| match l {
                    Json::Str(s) => Ok(s.clone()),
                    _ => Err(WireError::Malformed { context: "lines" }),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Query {
                dataset: get_str(&j, "dataset")?,
                lines,
            })
        }
        "delta" => {
            let remove = get_arr(&j, "remove")?
                .iter()
                .map(|k| {
                    let v = num_u64(k, "remove")?;
                    u32::try_from(v).map_err(|_| WireError::Malformed { context: "remove" })
                })
                .collect::<Result<Vec<_>, _>>()?;
            let append = get_arr(&j, "append")?
                .iter()
                .map(|c| match c {
                    Json::Arr(parts) if parts.len() == 4 => {
                        let a = num_u64(&parts[0], "append")?;
                        let b = num_u64(&parts[1], "append")?;
                        let start = num_f64(&parts[2], "append")?;
                        let end = num_f64(&parts[3], "append")?;
                        if !(start.is_finite() && end.is_finite() && start <= end) {
                            return Err(WireError::Malformed { context: "append" });
                        }
                        let a = u32::try_from(a)
                            .map_err(|_| WireError::Malformed { context: "append" })?;
                        let b = u32::try_from(b)
                            .map_err(|_| WireError::Malformed { context: "append" })?;
                        Ok(Contact::secs(a, b, start, end))
                    }
                    _ => Err(WireError::Malformed { context: "append" }),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Delta {
                dataset: get_str(&j, "dataset")?,
                key_epoch: get_u64(&j, "key_epoch")?,
                remove,
                append,
            })
        }
        _ => Err(malformed("unknown op")),
    }
}

/// The removal keys of a delta request as typed [`ContactKey`]s.
pub fn delta_keys(remove: &[u32]) -> Vec<ContactKey> {
    remove.iter().map(|&k| ContactKey(k)).collect()
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One dataset the server routes to, as reported by [`Request::List`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Registry name (what requests address).
    pub name: String,
    /// The dataset key recorded in the engine's metadata.
    pub dataset_key: String,
    /// Node universe size.
    pub num_nodes: u32,
    /// Current contact-key epoch (what a delta must quote).
    pub key_epoch: u64,
    /// Whether the dataset accepts deltas (trace-backed engines do;
    /// artifact-backed sets are immutable).
    pub mutable: bool,
}

/// One server response. The wire form is a JSON object with a `"type"`
/// field selecting the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::List`].
    Datasets(Vec<DatasetInfo>),
    /// Answer to [`Request::Query`]: one slot per parsed query line, in
    /// order (blank/comment lines produce no slot).
    Results(Vec<Result<QueryResponse, QueryError>>),
    /// Answer to [`Request::Delta`].
    Delta(Result<DeltaApplied, QueryError>),
    /// A protocol-level failure: unknown dataset, malformed request, or
    /// shutdown in progress.
    Error(String),
}

fn options_json(o: &ProfileOptions) -> Json {
    Json::Obj(vec![
        ("store_levels".into(), Json::usize(o.store_levels)),
        ("max_levels".into(), Json::usize(o.max_levels)),
        (
            "arc_pruning".into(),
            Json::str(match o.arc_pruning {
                ArcPruning::Exhaustive => "exhaustive",
                _ => "time_indexed",
            }),
        ),
        (
            "level_storage".into(),
            Json::str(match o.level_storage {
                LevelStorage::FullClones => "full_clones",
                _ => "deltas",
            }),
        ),
    ])
}

fn decode_options(j: &Json) -> Result<ProfileOptions, WireError> {
    let arc_pruning = match get_str(j, "arc_pruning")?.as_str() {
        "exhaustive" => ArcPruning::Exhaustive,
        "time_indexed" => ArcPruning::TimeIndexed,
        _ => return Err(malformed("arc_pruning")),
    };
    let level_storage = match get_str(j, "level_storage")?.as_str() {
        "full_clones" => LevelStorage::FullClones,
        "deltas" => LevelStorage::Deltas,
        _ => return Err(malformed("level_storage")),
    };
    Ok(ProfileOptions::builder()
        .store_levels(get_usize(j, "store_levels")?)
        .max_levels(get_usize(j, "max_levels")?)
        .arc_pruning(arc_pruning)
        .level_storage(level_storage)
        .build())
}

fn answer_json(r: &QueryResponse) -> Json {
    match r {
        QueryResponse::Delivery(a) => Json::Obj(vec![
            ("type".into(), Json::str("delivery")),
            ("src".into(), Json::u32(a.src)),
            ("dst".into(), Json::u32(a.dst)),
            ("at".into(), time_json(a.at)),
            ("bound".into(), bound_json(a.bound)),
            ("arrival".into(), time_json(a.arrival)),
            ("delay".into(), dur_json(a.delay)),
            ("reachable".into(), Json::Bool(a.reachable)),
        ]),
        QueryResponse::Path(a) => Json::Obj(vec![
            ("type".into(), Json::str("path")),
            ("src".into(), Json::u32(a.src)),
            ("dst".into(), Json::u32(a.dst)),
            ("at".into(), time_json(a.at)),
            ("reachable".into(), Json::Bool(a.reachable)),
            ("arrival".into(), time_json(a.arrival)),
            ("delay".into(), dur_json(a.delay)),
            ("hops".into(), Json::usize(a.hops)),
            (
                "route".into(),
                match &a.route {
                    None => Json::Null,
                    Some(route) => Json::Arr(
                        route
                            .iter()
                            .map(|h| {
                                Json::Obj(vec![
                                    ("from".into(), Json::u32(h.from.0)),
                                    ("to".into(), Json::u32(h.to.0)),
                                    ("start".into(), time_json(h.window.start)),
                                    ("end".into(), time_json(h.window.end)),
                                    ("at".into(), time_json(h.at)),
                                ])
                            })
                            .collect(),
                    ),
                },
            ),
        ]),
        QueryResponse::Diameter(a) => Json::Obj(vec![
            ("type".into(), Json::str("diameter")),
            ("eps".into(), Json::f64(a.eps)),
            ("max_hops".into(), Json::usize(a.max_hops)),
            ("pairs".into(), Json::usize(a.pairs)),
            (
                "grid".into(),
                Json::Arr(a.grid.iter().map(|&d| dur_json(d)).collect()),
            ),
            (
                "diameter".into(),
                a.diameter.map_or(Json::Null, Json::usize),
            ),
            (
                "per_delay".into(),
                Json::Arr(
                    a.per_delay
                        .iter()
                        .map(|d| d.map_or(Json::Null, Json::usize))
                        .collect(),
                ),
            ),
        ]),
        QueryResponse::Stats(a) => Json::Obj(vec![
            ("type".into(), Json::str("stats")),
            ("dataset_key".into(), Json::str(&a.dataset_key)),
            ("num_nodes".into(), Json::u32(a.num_nodes)),
            ("num_internal".into(), Json::u32(a.num_internal)),
            ("window_start".into(), time_json(a.window.start)),
            ("window_end".into(), time_json(a.window.end)),
            ("options".into(), options_json(&a.options)),
            ("shards".into(), Json::usize(a.shards)),
            ("rows".into(), Json::usize(a.rows)),
            (
                "max_useful_hops".into(),
                a.max_useful_hops.map_or(Json::Null, Json::usize),
            ),
        ]),
    }
}

fn decode_answer(j: &Json) -> Result<QueryResponse, WireError> {
    match get_str(j, "type")?.as_str() {
        "delivery" => Ok(QueryResponse::Delivery(DeliveryAnswer {
            src: get_u32(j, "src")?,
            dst: get_u32(j, "dst")?,
            at: get_time(j, "at")?,
            bound: get_bound(j, "bound")?,
            arrival: get_time(j, "arrival")?,
            delay: get_dur(j, "delay")?,
            reachable: get_bool(j, "reachable")?,
        })),
        "path" => {
            let route = match field(j, "route")? {
                Json::Null => None,
                Json::Arr(hops) => Some(
                    hops.iter()
                        .map(|h| {
                            Ok(PathHop {
                                from: NodeId(get_u32(h, "from")?),
                                to: NodeId(get_u32(h, "to")?),
                                window: Interval::new(get_time(h, "start")?, get_time(h, "end")?),
                                at: get_time(h, "at")?,
                            })
                        })
                        .collect::<Result<Vec<_>, WireError>>()?,
                ),
                _ => return Err(malformed("route")),
            };
            Ok(QueryResponse::Path(PathAnswer {
                src: get_u32(j, "src")?,
                dst: get_u32(j, "dst")?,
                at: get_time(j, "at")?,
                reachable: get_bool(j, "reachable")?,
                arrival: get_time(j, "arrival")?,
                delay: get_dur(j, "delay")?,
                hops: get_usize(j, "hops")?,
                route,
            }))
        }
        "diameter" => {
            let grid = get_arr(j, "grid")?
                .iter()
                .map(|d| match d {
                    Json::Null => Ok(Dur::INF),
                    v => Ok(Dur::secs(num_f64(v, "grid")?)),
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            let per_delay = get_arr(j, "per_delay")?
                .iter()
                .map(|d| match d {
                    Json::Null => Ok(None),
                    v => {
                        let k = num_u64(v, "per_delay")?;
                        usize::try_from(k)
                            .map(Some)
                            .map_err(|_| malformed("per_delay"))
                    }
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            let diameter = match field(j, "diameter")? {
                Json::Null => None,
                v => Some(
                    usize::try_from(num_u64(v, "diameter")?).map_err(|_| malformed("diameter"))?,
                ),
            };
            Ok(QueryResponse::Diameter(DiameterAnswer {
                eps: get_f64(j, "eps")?,
                max_hops: get_usize(j, "max_hops")?,
                pairs: get_usize(j, "pairs")?,
                grid,
                diameter,
                per_delay,
            }))
        }
        "stats" => {
            let max_useful_hops = match field(j, "max_useful_hops")? {
                Json::Null => None,
                v => Some(
                    usize::try_from(num_u64(v, "max_useful_hops")?)
                        .map_err(|_| malformed("max_useful_hops"))?,
                ),
            };
            Ok(QueryResponse::Stats(StatsAnswer {
                dataset_key: get_str(j, "dataset_key")?,
                num_nodes: get_u32(j, "num_nodes")?,
                num_internal: get_u32(j, "num_internal")?,
                window: Interval::new(get_time(j, "window_start")?, get_time(j, "window_end")?),
                options: decode_options(field(j, "options")?)?,
                shards: get_usize(j, "shards")?,
                rows: get_usize(j, "rows")?,
                max_useful_hops,
            }))
        }
        _ => Err(malformed("unknown answer type")),
    }
}

fn error_json(e: &QueryError) -> Json {
    // Every error carries its rendered message alongside the typed fields,
    // so clients that don't know a (future) kind can still report it.
    let mut fields = vec![("message".to_string(), Json::str(&e.to_string()))];
    match e {
        QueryError::Parse { .. } => fields.insert(0, ("kind".into(), Json::str("parse"))),
        QueryError::NodeOutOfRange { node, num_nodes } => {
            fields.insert(0, ("kind".into(), Json::str("node_out_of_range")));
            fields.push(("node".into(), Json::u32(*node)));
            fields.push(("num_nodes".into(), Json::u32(*num_nodes)));
        }
        QueryError::SameNode => fields.insert(0, ("kind".into(), Json::str("same_node"))),
        QueryError::ShardMissing { source } => {
            fields.insert(0, ("kind".into(), Json::str("shard_missing")));
            fields.push(("source".into(), Json::u32(*source)));
        }
        QueryError::BadParameter { .. } => {
            fields.insert(0, ("kind".into(), Json::str("bad_parameter")));
        }
        QueryError::HopsBeyondArtifact { requested, stored } => {
            fields.insert(0, ("kind".into(), Json::str("hops_beyond_artifact")));
            fields.push(("requested".into(), Json::usize(*requested)));
            fields.push(("stored".into(), Json::usize(*stored)));
        }
        QueryError::ShardRejected { source, message } => {
            fields.insert(0, ("kind".into(), Json::str("shard_rejected")));
            fields.push(("source".into(), Json::u32(*source)));
            fields.push(("detail".into(), Json::str(message)));
        }
        QueryError::StaleKeyEpoch { presented, current } => {
            fields.insert(0, ("kind".into(), Json::str("stale_key_epoch")));
            fields.push(("presented".into(), Json::u64(*presented)));
            fields.push(("current".into(), Json::u64(*current)));
        }
    }
    Json::Obj(fields)
}

fn decode_error(j: &Json) -> Result<QueryError, WireError> {
    Ok(match get_str(j, "kind")?.as_str() {
        "parse" => {
            let full = get_str(j, "message")?;
            QueryError::Parse {
                // `Display` prefixes "query syntax: "; strip it back off so
                // the reconstructed error renders identically.
                message: full
                    .strip_prefix("query syntax: ")
                    .unwrap_or(&full)
                    .to_string(),
            }
        }
        "node_out_of_range" => QueryError::NodeOutOfRange {
            node: get_u32(j, "node")?,
            num_nodes: get_u32(j, "num_nodes")?,
        },
        "same_node" => QueryError::SameNode,
        "shard_missing" => QueryError::ShardMissing {
            source: get_u32(j, "source")?,
        },
        "bad_parameter" => QueryError::BadParameter {
            message: get_str(j, "message")?,
        },
        "hops_beyond_artifact" => QueryError::HopsBeyondArtifact {
            requested: get_usize(j, "requested")?,
            stored: get_usize(j, "stored")?,
        },
        "shard_rejected" => QueryError::ShardRejected {
            source: get_u32(j, "source")?,
            message: get_str(j, "detail")?,
        },
        "stale_key_epoch" => QueryError::StaleKeyEpoch {
            presented: get_u64(j, "presented")?,
            current: get_u64(j, "current")?,
        },
        // An unknown kind (newer server) degrades to its message.
        _ => QueryError::BadParameter {
            message: get_str(j, "message")?,
        },
    })
}

fn applied_json(a: &DeltaApplied) -> Json {
    Json::Obj(vec![
        ("rows_invalidated".into(), Json::usize(a.rows_invalidated)),
        ("key_epoch".into(), Json::u64(a.key_epoch)),
        ("num_contacts".into(), Json::usize(a.num_contacts)),
    ])
}

fn decode_applied(j: &Json) -> Result<DeltaApplied, WireError> {
    Ok(DeltaApplied {
        rows_invalidated: get_usize(j, "rows_invalidated")?,
        key_epoch: get_u64(j, "key_epoch")?,
        num_contacts: get_usize(j, "num_contacts")?,
    })
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let j = match resp {
        Response::Datasets(infos) => Json::Obj(vec![
            ("type".into(), Json::str("datasets")),
            (
                "datasets".into(),
                Json::Arr(
                    infos
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&d.name)),
                                ("dataset_key".into(), Json::str(&d.dataset_key)),
                                ("num_nodes".into(), Json::u32(d.num_nodes)),
                                ("key_epoch".into(), Json::u64(d.key_epoch)),
                                ("mutable".into(), Json::Bool(d.mutable)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Results(results) => Json::Obj(vec![
            ("type".into(), Json::str("results")),
            (
                "results".into(),
                Json::Arr(
                    results
                        .iter()
                        .map(|r| match r {
                            Ok(a) => Json::Obj(vec![
                                ("ok".into(), Json::Bool(true)),
                                ("answer".into(), answer_json(a)),
                            ]),
                            Err(e) => Json::Obj(vec![
                                ("ok".into(), Json::Bool(false)),
                                ("error".into(), error_json(e)),
                            ]),
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Delta(outcome) => match outcome {
            Ok(a) => Json::Obj(vec![
                ("type".into(), Json::str("delta")),
                ("ok".into(), Json::Bool(true)),
                ("applied".into(), applied_json(a)),
            ]),
            Err(e) => Json::Obj(vec![
                ("type".into(), Json::str("delta")),
                ("ok".into(), Json::Bool(false)),
                ("error".into(), error_json(e)),
            ]),
        },
        Response::Error(message) => Json::Obj(vec![
            ("type".into(), Json::str("error")),
            ("message".into(), Json::str(message)),
        ]),
    };
    j.render().into_bytes()
}

/// Decodes a frame payload into a response.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let j = parse_json(bytes)?;
    match get_str(&j, "type")?.as_str() {
        "datasets" => {
            let infos = get_arr(&j, "datasets")?
                .iter()
                .map(|d| {
                    Ok(DatasetInfo {
                        name: get_str(d, "name")?,
                        dataset_key: get_str(d, "dataset_key")?,
                        num_nodes: get_u32(d, "num_nodes")?,
                        key_epoch: get_u64(d, "key_epoch")?,
                        mutable: get_bool(d, "mutable")?,
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(Response::Datasets(infos))
        }
        "results" => {
            let results = get_arr(&j, "results")?
                .iter()
                .map(|r| {
                    if get_bool(r, "ok")? {
                        decode_answer(field(r, "answer")?).map(Ok)
                    } else {
                        decode_error(field(r, "error")?).map(Err)
                    }
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(Response::Results(results))
        }
        "delta" => {
            if get_bool(&j, "ok")? {
                Ok(Response::Delta(Ok(decode_applied(field(&j, "applied")?)?)))
            } else {
                Ok(Response::Delta(Err(decode_error(field(&j, "error")?)?)))
            }
        }
        "error" => Ok(Response::Error(get_str(&j, "message")?)),
        _ => Err(malformed("unknown response type")),
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client connection to an `omnet serve` instance. One request
/// in flight at a time; requests on one connection are answered in order.
#[derive(Debug)]
pub struct Client {
    stream: std::net::TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, WireError> {
        Ok(Client {
            stream: std::net::TcpStream::connect(addr)?,
        })
    }

    /// Sends one request and reads its response. A server-reported
    /// protocol error surfaces as [`WireError::Protocol`].
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let Some(payload) = read_frame(&mut self.stream)? else {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )));
        };
        match decode_response(&payload)? {
            Response::Error(message) => Err(WireError::Protocol { message }),
            resp => Ok(resp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_response(r: &Response) -> Response {
        decode_response(&encode_response(r)).unwrap()
    }

    fn roundtrip_request(r: &Request) -> Request {
        decode_request(&encode_request(r)).unwrap()
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in [1, 3, 6] {
            let mut r = &buf[..buf.len() - cut];
            assert!(matches!(read_frame(&mut r), Err(WireError::Io(_))));
        }
    }

    #[test]
    fn json_parses_and_rerenders() {
        let src =
            br#"{"a": [1, -2.5, 1e3], "b": "q\"\\\n\u0041\ud83d\ude00", "c": null, "d": true}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(
            v.get("b"),
            Some(&Json::Str("q\"\\\nA\u{1F600}".to_string()))
        );
        // render → parse is the identity.
        assert_eq!(parse_json(v.render().as_bytes()).unwrap(), v);
    }

    #[test]
    fn json_rejects_garbage() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\" 1}",
            b"nul",
            b"1.e3",
            b"--1",
            b"\"unterminated",
            b"{} trailing",
            b"\"\\ud800\"",
        ] {
            assert!(
                parse_json(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn u64_precision_survives_the_wire() {
        let req = Request::Delta {
            dataset: "x".into(),
            key_epoch: u64::MAX - 1,
            remove: vec![0, u32::MAX - 1],
            append: vec![Contact::secs(1, 2, 0.25, 1e9)],
        };
        assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::List,
            Request::Query {
                dataset: "reality".into(),
                lines: vec!["delivery 0 3 120".into(), "# comment \"quoted\"".into()],
            },
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn answers_roundtrip_including_infinities() {
        let results: Vec<Result<QueryResponse, QueryError>> = vec![
            Ok(QueryResponse::Delivery(DeliveryAnswer {
                src: 3,
                dst: 7,
                at: Time::secs(0.1),
                bound: HopBound::AtMost(4),
                arrival: Time::INF,
                delay: Dur::INF,
                reachable: false,
            })),
            Ok(QueryResponse::Path(PathAnswer {
                src: 0,
                dst: 1,
                at: Time::secs(5.5),
                reachable: true,
                arrival: Time::secs(17.25),
                delay: Dur::secs(11.75),
                hops: 2,
                route: Some(vec![PathHop {
                    from: NodeId(0),
                    to: NodeId(1),
                    window: Interval::secs(1.0, 30.0),
                    at: Time::secs(5.5),
                }]),
            })),
            Ok(QueryResponse::Diameter(DiameterAnswer {
                eps: 0.01,
                max_hops: 6,
                pairs: 20,
                grid: vec![Dur::secs(120.0), Dur::secs(553.1578947368421)],
                diameter: Some(3),
                per_delay: vec![None, Some(3)],
            })),
            Ok(QueryResponse::Stats(StatsAnswer {
                dataset_key: "toy".into(),
                num_nodes: 5,
                num_internal: 4,
                window: Interval::secs(0.0, 920.0),
                options: ProfileOptions::builder()
                    .store_levels(3)
                    .arc_pruning(ArcPruning::Exhaustive)
                    .level_storage(LevelStorage::FullClones)
                    .build(),
                shards: 2,
                rows: 5,
                max_useful_hops: None,
            })),
            Err(QueryError::StaleKeyEpoch {
                presented: 3,
                current: 9,
            }),
            Err(QueryError::Parse {
                message: "invalid src id 'x'".into(),
            }),
            Err(QueryError::ShardRejected {
                source: 2,
                message: "ROWS section checksum mismatch".into(),
            }),
        ];
        let resp = Response::Results(results.clone());
        assert_eq!(roundtrip_response(&resp), resp);
        // The reconstructed errors render identically — what keeps remote
        // `error:` lines byte-identical to local ones.
        let Response::Results(back) = roundtrip_response(&resp) else {
            unreachable!()
        };
        for (orig, back) in results.iter().zip(&back) {
            if let (Err(a), Err(b)) = (orig, back) {
                assert_eq!(a.to_string(), b.to_string());
            }
        }
    }

    #[test]
    fn float_fidelity_is_exact() {
        // Awkward doubles: shortest-roundtrip formatting must survive.
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let resp = Response::Results(vec![Ok(QueryResponse::Delivery(DeliveryAnswer {
                src: 0,
                dst: 1,
                at: Time::secs(v),
                bound: HopBound::Unlimited,
                arrival: Time::secs(v * 2.0),
                delay: Dur::secs(v),
                reachable: true,
            }))]);
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn delta_and_list_responses_roundtrip() {
        let resp = Response::Delta(Ok(DeltaApplied {
            rows_invalidated: 4,
            key_epoch: 17,
            num_contacts: 99,
        }));
        assert_eq!(roundtrip_response(&resp), resp);
        let resp = Response::Delta(Err(QueryError::BadParameter {
            message: "appended contact lies outside the observation window".into(),
        }));
        assert_eq!(roundtrip_response(&resp), resp);
        let resp = Response::Datasets(vec![DatasetInfo {
            name: "live".into(),
            dataset_key: "toy".into(),
            num_nodes: 5,
            key_epoch: 2,
            mutable: true,
        }]);
        assert_eq!(roundtrip_response(&resp), resp);
        let resp = Response::Error("unknown dataset 'nope'".into());
        assert_eq!(roundtrip_response(&resp), resp);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(matches!(
            decode_response(b"{\"type\":\"results\",\"results\":[{\"ok\":true}]}"),
            Err(WireError::Malformed { .. })
        ));
        assert!(matches!(
            decode_request(b"{\"op\":\"warp\"}"),
            Err(WireError::Malformed { .. })
        ));
        assert!(matches!(
            decode_request(b"{\"op\":\"delta\",\"dataset\":\"d\",\"key_epoch\":1,\"remove\":[],\"append\":[[0,1,5,2]]}"),
            Err(WireError::Malformed { .. })
        ));
    }
}
