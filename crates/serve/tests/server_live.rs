//! Live-socket integration tests for `Server`: multi-dataset routing,
//! byte-level agreement with in-process answering, concurrent
//! delta/query interleaving (the torn-read regression), and drain
//! semantics on shutdown.

use omnet_core::{AllPairsProfiles, ProfileOptions};
use omnet_serve::wire::{Client, Request, Response};
use omnet_serve::{Engine, Query, Server};
use omnet_temporal::{Contact, Trace, TraceBuilder};
use std::path::PathBuf;
use std::sync::Arc;

fn toy() -> Trace {
    TraceBuilder::new()
        .num_nodes(5)
        .internal(4)
        .contact_secs(0, 1, 0.0, 120.0)
        .contact_secs(1, 2, 100.0, 260.0)
        .contact_secs(2, 3, 400.0, 520.0)
        .contact_secs(0, 3, 800.0, 920.0)
        .contact_secs(0, 1, 600.0, 720.0)
        .contact_secs(3, 4, 450.0, 470.0)
        .build()
}

fn tmp(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("omnet-srv-{tag}-{}-{n}", std::process::id()))
}

/// Artifact-backed engine over `t`, written to and loaded from disk.
fn artifact_engine(t: &Trace, shards: u32) -> Engine {
    let opts = ProfileOptions::default();
    let meta = omnet_artifact::ArtifactMeta {
        dataset_key: "toy".into(),
        num_nodes: t.num_nodes(),
        num_internal: t.num_internal(),
        window: t.span(),
        options: opts,
    };
    let rows = AllPairsProfiles::compute(t, opts).into_rows();
    let dir = tmp("art");
    omnet_artifact::write_set(&dir, "toy", &meta, &rows, shards).unwrap();
    Engine::load_dir(&dir).unwrap()
}

/// Query lines answered deterministically regardless of memoization
/// state (so `stats`, whose `rows` field depends on timing, is absent).
fn lines() -> Vec<String> {
    let mut lines = vec![
        "# exercised over the wire".to_string(),
        String::new(),
        "diameter 0.01 6".to_string(),
    ];
    for s in 0..5 {
        for d in 0..5 {
            if s != d {
                lines.push(format!("delivery {s} {d} 50 3"));
                lines.push(format!("path {s} {d} 0"));
            }
        }
    }
    lines
}

fn parse_all(lines: &[String]) -> Vec<Query> {
    lines
        .iter()
        .filter_map(|l| Query::parse_line(l).unwrap())
        .collect()
}

#[test]
fn remote_answers_match_in_process_across_datasets() {
    let t = toy();
    let opts = ProfileOptions::default();
    let engines = vec![
        (
            "toy".to_string(),
            artifact_engine(&t, 2)
                .with_trace(Arc::new(t.clone()))
                .unwrap(),
        ),
        (
            "live".to_string(),
            Engine::from_trace(Arc::new(t.clone()), opts, "toy"),
        ),
    ];
    let server = Server::bind("127.0.0.1:0", engines).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run().unwrap());

    // Reference: the same queries answered by an identical in-process
    // engine (same artifacts → same answers as the served one).
    let reference = artifact_engine(&t, 2)
        .with_trace(Arc::new(t.clone()))
        .unwrap()
        .answer_batch(&parse_all(&lines()));

    let mut client = Client::connect(&addr).unwrap();

    // `list` reports both datasets with their mutability.
    let Response::Datasets(infos) = client.call(&Request::List).unwrap() else {
        panic!("expected datasets");
    };
    assert_eq!(infos.len(), 2);
    assert_eq!(infos[0].name, "live");
    assert!(infos[0].mutable, "trace-backed datasets accept deltas");
    assert_eq!(infos[1].name, "toy");
    assert!(!infos[1].mutable, "artifact sets are immutable");
    assert_eq!(infos[1].dataset_key, "toy");
    assert_eq!(infos[1].num_nodes, 5);

    // Both datasets answer the full batch exactly like the in-process
    // engine — same typed values after the wire roundtrip.
    for dataset in ["toy", "live"] {
        let Response::Results(results) = client
            .call(&Request::Query {
                dataset: dataset.to_string(),
                lines: lines(),
            })
            .unwrap()
        else {
            panic!("expected results");
        };
        assert_eq!(results.len(), reference.len(), "comment lines keep no slot");
        for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
            assert_eq!(got, want, "slot {i} diverged on dataset {dataset}");
        }
    }

    // Unknown datasets are protocol errors, not hung connections.
    let err = client
        .call(&Request::Query {
            dataset: "nope".into(),
            lines: vec!["stats".into()],
        })
        .unwrap_err();
    assert!(err.to_string().contains("unknown dataset 'nope'"), "{err}");

    // A delta against the immutable artifact dataset is a typed refusal.
    let Response::Delta(outcome) = client
        .call(&Request::Delta {
            dataset: "toy".into(),
            key_epoch: 0,
            remove: vec![0],
            append: vec![],
        })
        .unwrap()
    else {
        panic!("expected delta response");
    };
    assert!(outcome.unwrap_err().to_string().contains("immutable"));

    handle.shutdown();
    let report = running.join().unwrap();
    assert_eq!(report.connections, 1);
    assert_eq!(report.requests, 5);
}

#[test]
fn concurrent_deltas_and_queries_are_never_torn() {
    let t = toy();
    let opts = ProfileOptions::default();
    let delta = omnet_core::incremental::ContactDelta {
        remove: vec![omnet_temporal::ContactKey(3)],
        append: vec![Contact::secs(0, 4, 500.0, 560.0)],
    };

    // Reference answer sets for both engine states; the delta must
    // actually change some answer or the test proves nothing.
    let queries = parse_all(&lines());
    let pre = Engine::from_trace(Arc::new(t.clone()), opts, "toy").answer_batch(&queries);
    let post = {
        let mut e = Engine::from_trace(Arc::new(t.clone()), opts, "toy");
        e.apply_delta(&delta, 0).unwrap();
        e.answer_batch(&queries)
    };
    assert_ne!(pre, post, "delta must change at least one answer");

    let server = Server::bind(
        "127.0.0.1:0",
        vec![(
            "live".to_string(),
            Engine::from_trace(Arc::new(t.clone()), opts, "toy"),
        )],
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run().unwrap());

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 12;
    let readers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let pre = pre.clone();
            let post = post.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut saw = [0usize; 2];
                for round in 0..ROUNDS {
                    let Response::Results(results) = client
                        .call(&Request::Query {
                            dataset: "live".into(),
                            lines: lines(),
                        })
                        .unwrap()
                    else {
                        panic!("expected results");
                    };
                    // The whole batch must be answered from ONE engine
                    // state: entirely pre-delta or entirely post-delta.
                    if results == pre {
                        saw[0] += 1;
                    } else if results == post {
                        saw[1] += 1;
                    } else {
                        panic!("round {round}: torn batch (neither pre- nor post-delta)");
                    }
                }
                saw
            })
        })
        .collect();

    // Meanwhile: a writer applies the delta over the wire, mid-storm. A
    // stale retry must be rejected with the typed epoch error.
    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(30));
            let req = Request::Delta {
                dataset: "live".into(),
                key_epoch: 0,
                remove: vec![3],
                append: vec![Contact::secs(0, 4, 500.0, 560.0)],
            };
            let Response::Delta(applied) = client.call(&req).unwrap() else {
                panic!("expected delta response");
            };
            let applied = applied.unwrap();
            assert_eq!(applied.key_epoch, 1);
            assert_eq!(applied.num_contacts, 6, "6 - 1 removed + 1 appended");
            // Replaying the same delta quotes a dead epoch.
            let Response::Delta(stale) = client.call(&req).unwrap() else {
                panic!("expected delta response");
            };
            let err = stale.unwrap_err();
            assert!(
                matches!(
                    err,
                    omnet_serve::QueryError::StaleKeyEpoch {
                        presented: 0,
                        current: 1
                    }
                ),
                "{err}"
            );
        })
    };
    writer.join().unwrap();

    let mut totals = [0usize; 2];
    for reader in readers {
        let saw = reader.join().unwrap();
        totals[0] += saw[0];
        totals[1] += saw[1];
    }
    assert_eq!(totals[0] + totals[1], CLIENTS * ROUNDS);
    assert!(totals[1] > 0, "some batches must see the post-delta engine");

    handle.shutdown();
    running.join().unwrap();
}

#[test]
fn shutdown_drains_idle_connections_and_refuses_new_ones() {
    let t = toy();
    let server = Server::bind(
        "127.0.0.1:0",
        vec![(
            "live".to_string(),
            Engine::from_trace(Arc::new(t.clone()), ProfileOptions::default(), "toy"),
        )],
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run().unwrap());

    // An idle connection with one answered request…
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .call(&Request::Query {
            dataset: "live".into(),
            lines: vec!["delivery 0 3 0".into()],
        })
        .unwrap();
    assert!(matches!(resp, Response::Results(_)));

    // …does not block the drain: run() returns even though the client
    // never closed its side.
    handle.shutdown();
    let report = running.join().unwrap();
    assert_eq!(report.connections, 1);
    assert_eq!(report.requests, 1);

    // The idle connection was closed by the server…
    assert!(client.call(&Request::List).is_err());
    // …and the port no longer accepts (or instantly drops) connections.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.call(&Request::List).is_err()),
    }
}
