//! Non-stationary random temporal networks (§3.4, "Stationarity").
//!
//! Human traces alternate dense, highly mobile periods with sparse, slowly
//! varying ones (days vs nights). The paper conjectures this modulation
//! stretches the *delay* of optimal paths but hardly changes their *hop
//! count*. [`ModulatedModel`] makes the conjecture testable: a discrete
//! random temporal network whose contact rate follows a deterministic
//! high/low duty cycle with a prescribed time-average.

use crate::model::{DiscreteModel, SlotEdges};
use crate::montecarlo::{relax_slot, RelaxScratch};
use crate::theory::ContactCase;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A discrete model whose per-slot rate alternates between `lambda_high`
/// (for `duty · period` slots) and `lambda_low` (for the rest).
#[derive(Debug, Clone, Copy)]
pub struct ModulatedModel {
    /// Number of nodes.
    pub n: usize,
    /// Rate during the active phase.
    pub lambda_high: f64,
    /// Rate during the quiet phase.
    pub lambda_low: f64,
    /// Cycle length in slots.
    pub period: usize,
    /// Fraction of the cycle spent in the active phase, in `(0, 1]`.
    pub duty: f64,
}

impl ModulatedModel {
    /// Creates the model; validates all parameters.
    pub fn new(
        n: usize,
        lambda_high: f64,
        lambda_low: f64,
        period: usize,
        duty: f64,
    ) -> ModulatedModel {
        assert!(n >= 2, "need at least two nodes");
        assert!(
            lambda_high > 0.0 && lambda_high <= n as f64,
            "high rate out of range"
        );
        assert!(
            lambda_low >= 0.0 && lambda_low <= n as f64,
            "low rate out of range"
        );
        assert!(period >= 1, "period must be at least one slot");
        assert!(duty > 0.0 && duty <= 1.0, "duty cycle in (0, 1]");
        ModulatedModel {
            n,
            lambda_high,
            lambda_low,
            period,
            duty,
        }
    }

    /// A modulated model with the same time-average rate as a stationary
    /// model of rate `lambda_mean`: the active phase runs at
    /// `lambda_mean · boost`, the quiet phase is scaled so the duty-weighted
    /// mean stays `lambda_mean`.
    pub fn with_mean(
        n: usize,
        lambda_mean: f64,
        boost: f64,
        period: usize,
        duty: f64,
    ) -> ModulatedModel {
        assert!(boost >= 1.0, "boost must be at least 1");
        let high = lambda_mean * boost;
        let low = (lambda_mean - duty * high) / (1.0 - duty).max(1e-12);
        assert!(
            low >= 0.0,
            "boost {boost} with duty {duty} would need a negative quiet rate"
        );
        ModulatedModel::new(n, high, low.max(0.0), period, duty)
    }

    /// The time-average contact rate.
    pub fn mean_rate(&self) -> f64 {
        self.duty * self.lambda_high + (1.0 - self.duty) * self.lambda_low
    }

    /// The rate in force during slot `t`.
    pub fn rate_at(&self, t: usize) -> f64 {
        let phase = (t % self.period) as f64 / self.period as f64;
        if phase < self.duty {
            self.lambda_high
        } else {
            self.lambda_low
        }
    }

    /// Samples the edges of slot `t`.
    pub fn sample_slot(&self, t: usize, rng: &mut StdRng) -> SlotEdges {
        let rate = self.rate_at(t);
        if rate <= 0.0 {
            return Vec::new();
        }
        DiscreteModel::new(self.n, rate).sample_slot(rng)
    }

    /// Floods from node 0 toward node `N−1` and reports the delay-optimal
    /// path's `(delay_slots, hops)` — the modulated counterpart of
    /// [`crate::delay_optimal_stats`]. The message is created at a uniform
    /// random phase of the cycle, so night stalls are sampled fairly.
    pub fn delay_optimal_stats(
        &self,
        case: ContactCase,
        max_slots: usize,
        rng: &mut StdRng,
    ) -> Option<(usize, u32)> {
        self.delay_optimal_stats_with(
            case,
            max_slots,
            rng,
            &mut Vec::new(),
            &mut RelaxScratch::default(),
        )
    }

    /// [`Self::delay_optimal_stats`] with caller-pooled `labels` and
    /// relaxation `scratch`, for allocation-free replication sweeps.
    fn delay_optimal_stats_with(
        &self,
        case: ContactCase,
        max_slots: usize,
        rng: &mut StdRng,
        labels: &mut Vec<u32>,
        scratch: &mut RelaxScratch,
    ) -> Option<(usize, u32)> {
        use rand::Rng as _;
        let dest = self.n - 1;
        labels.clear();
        labels.resize(self.n, u32::MAX);
        labels[0] = 0;
        let phase = rng.gen_range(0..self.period);
        for slot in 1..=max_slots {
            let edges = self.sample_slot(phase + slot - 1, rng);
            relax_slot(labels, &edges, case, scratch);
            if labels[dest] != u32::MAX {
                return Some((slot, labels[dest]));
            }
        }
        None
    }

    /// Mean `(delay/lnN, hops/lnN)` over `reps` floods, skipping misses.
    pub fn estimate_optimal_path(
        &self,
        case: ContactCase,
        max_slots: usize,
        reps: usize,
        seed: u64,
    ) -> crate::OptimalPathEstimate {
        assert!(reps > 0, "need at least one replication");
        let results = omnet_analysis::par_map_with(
            reps,
            <(Vec<u32>, RelaxScratch)>::default,
            |(labels, scratch), r| {
                let mut rng = StdRng::seed_from_u64(
                    seed.wrapping_add(r as u64)
                        .wrapping_mul(0xA076_1D64_78BD_642F),
                );
                self.delay_optimal_stats_with(case, max_slots, &mut rng, labels, scratch)
            },
        );
        let ln_n = (self.n as f64).ln();
        let mut d = 0.0;
        let mut h = 0.0;
        let mut hits = 0usize;
        for r in results.iter().flatten() {
            d += r.0 as f64;
            h += r.1 as f64;
            hits += 1;
        }
        crate::OptimalPathEstimate {
            delay_coefficient: if hits > 0 {
                d / hits as f64 / ln_n
            } else {
                f64::NAN
            },
            hop_coefficient: if hits > 0 {
                h / hits as f64 / ln_n
            } else {
                f64::NAN
            },
            misses: reps - hits,
            hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_preserved_by_with_mean() {
        let m = ModulatedModel::with_mean(100, 1.0, 2.5, 24, 0.4);
        assert!((m.mean_rate() - 1.0).abs() < 1e-12);
        assert!((m.lambda_high - 2.5).abs() < 1e-12);
        assert!(m.lambda_low < m.lambda_high);
    }

    #[test]
    fn rate_follows_duty_cycle() {
        let m = ModulatedModel::new(50, 2.0, 0.1, 10, 0.3);
        assert_eq!(m.rate_at(0), 2.0);
        assert_eq!(m.rate_at(2), 2.0);
        assert_eq!(m.rate_at(3), 0.1);
        assert_eq!(m.rate_at(9), 0.1);
        assert_eq!(m.rate_at(10), 2.0); // wraps
    }

    #[test]
    fn quiet_phase_produces_fewer_edges() {
        let m = ModulatedModel::new(200, 3.0, 0.1, 10, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let mut high = 0usize;
        let mut low = 0usize;
        for cycle in 0..40 {
            high += m.sample_slot(cycle * 10, &mut rng).len();
            low += m.sample_slot(cycle * 10 + 7, &mut rng).len();
        }
        assert!(high > 10 * low.max(1), "high {high} vs low {low}");
    }

    #[test]
    fn zero_low_rate_allowed() {
        let m = ModulatedModel::new(30, 1.0, 0.0, 4, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(m.sample_slot(3, &mut rng).is_empty());
    }

    #[test]
    fn modulated_path_stats_eventually_connect() {
        let m = ModulatedModel::with_mean(300, 1.0, 3.0, 20, 0.3);
        let est = m.estimate_optimal_path(ContactCase::Short, 600, 20, 6);
        assert_eq!(est.misses, 0);
        assert!(est.hop_coefficient > 0.0);
        assert!(est.delay_coefficient > 0.0);
    }

    #[test]
    fn hop_count_insensitive_delay_inflated() {
        // The §3.4 conjecture, in miniature: same mean rate, bursty vs
        // stationary — the delay coefficient grows, the hop coefficient
        // stays in the same range.
        let n = 400;
        let stationary = crate::estimate_optimal_path(
            crate::DiscreteModel::new(n, 0.5),
            ContactCase::Short,
            800,
            30,
            11,
        );
        let bursty = ModulatedModel::with_mean(n, 0.5, 4.0, 40, 0.25).estimate_optimal_path(
            ContactCase::Short,
            800,
            30,
            11,
        );
        assert_eq!(stationary.misses, 0);
        assert_eq!(bursty.misses, 0);
        assert!(
            (bursty.hop_coefficient - stationary.hop_coefficient).abs()
                < 0.5 * stationary.hop_coefficient,
            "hops moved too much: {} vs {}",
            bursty.hop_coefficient,
            stationary.hop_coefficient
        );
    }
}
