//! Monte-Carlo and exact-combinatorial validation of §3.
//!
//! Three instruments:
//!
//! * a slot-by-slot reachability dynamic program measuring whether a path
//!   satisfying the logarithmic constraints (1) exists — the empirical side
//!   of the phase transition (Figures 1–2);
//! * flooding statistics of the *delay-optimal* path — its delay in slots
//!   and its hop count, the empirical side of Figure 3;
//! * the exact expected number of constrained paths `E[Π_N]` in closed
//!   combinatorial form — a numeric check of Lemma 1's growth exponent.

use crate::model::DiscreteModel;
use crate::theory::ContactCase;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reusable buffers for [`relax_slot`], so the per-slot relaxation is
/// allocation-free in steady state: the `Short` case's label snapshot, and
/// the `Long` case's sorted arc list + worklist. One scratch serves any
/// number of slots and replications (the Monte-Carlo sweeps pool it per
/// worker through `par_map_with`).
#[derive(Debug, Default, Clone)]
pub(crate) struct RelaxScratch {
    /// `Short`: labels as they stood when the slot began.
    before: Vec<u32>,
    /// `Long`: the slot's edges, both directions, sorted by source node.
    arcs: Vec<(u32, u32)>,
    /// `Long`: nodes whose label decreased and must relax their neighbors.
    queue: std::collections::VecDeque<u32>,
    /// `Long`: whether a node currently sits in `queue` (all-false between
    /// calls — every pop clears its mark).
    in_queue: Vec<bool>,
}

/// Hop-count labels after flooding one slot graph.
///
/// `labels[v]` is the minimum number of contacts needed to reach `v` so far;
/// `u32::MAX` marks "not reached".
pub(crate) fn relax_slot(
    labels: &mut [u32],
    edges: &[(u32, u32)],
    case: ContactCase,
    scratch: &mut RelaxScratch,
) {
    match case {
        ContactCase::Short => {
            // One contact per slot per path: relax strictly from the labels
            // as they stood when the slot began.
            scratch.before.clear();
            scratch.before.extend_from_slice(labels);
            let before = &scratch.before;
            for &(u, v) in edges {
                let (u, v) = (u as usize, v as usize);
                if before[u] != u32::MAX && before[u] + 1 < labels[v] {
                    labels[v] = before[u] + 1;
                }
                if before[v] != u32::MAX && before[v] + 1 < labels[u] {
                    labels[u] = before[v] + 1;
                }
            }
        }
        ContactCase::Long => {
            // Chains within the slot: relax to the least fixpoint. Labels
            // only ever decrease and relaxation is order-independent, so a
            // worklist of improved nodes reaches the same fixpoint as the
            // old repeat-all-edges sweep while touching each arc only when
            // its source actually improved.
            let arcs = &mut scratch.arcs;
            arcs.clear();
            for &(u, v) in edges {
                arcs.push((u, v));
                arcs.push((v, u));
            }
            arcs.sort_unstable();
            if scratch.in_queue.len() < labels.len() {
                scratch.in_queue.resize(labels.len(), false);
            }
            scratch.queue.clear();
            let mut seed = u32::MAX;
            for &(u, _) in arcs.iter() {
                if u != seed {
                    seed = u;
                    if labels[u as usize] != u32::MAX && !scratch.in_queue[u as usize] {
                        scratch.in_queue[u as usize] = true;
                        scratch.queue.push_back(u);
                    }
                }
            }
            while let Some(u) = scratch.queue.pop_front() {
                scratch.in_queue[u as usize] = false;
                let through = labels[u as usize] + 1;
                let lo = arcs.partition_point(|a| a.0 < u);
                for &(_, v) in arcs[lo..].iter().take_while(|a| a.0 == u) {
                    if through < labels[v as usize] {
                        labels[v as usize] = through;
                        if !scratch.in_queue[v as usize] {
                            scratch.in_queue[v as usize] = true;
                            scratch.queue.push_back(v);
                        }
                    }
                }
            }
        }
    }
}

/// Floods from node 0 toward node `N−1` and reports the delay-optimal
/// path's `(delay_slots, hops)`: the first slot at which the destination is
/// reached, and the minimum hop count at that moment. `None` if the
/// destination stays unreached within `max_slots`.
pub fn delay_optimal_stats(
    model: DiscreteModel,
    case: ContactCase,
    max_slots: usize,
    rng: &mut StdRng,
) -> Option<(usize, u32)> {
    let mut labels = Vec::new();
    delay_optimal_stats_with(
        model,
        case,
        max_slots,
        rng,
        &mut labels,
        &mut RelaxScratch::default(),
    )
}

/// [`delay_optimal_stats`] with caller-pooled buffers: `labels` and
/// `scratch` are reset here and reused across calls, so a replication
/// sweep performs no per-slot (and after warm-up, no per-rep) allocation.
pub(crate) fn delay_optimal_stats_with(
    model: DiscreteModel,
    case: ContactCase,
    max_slots: usize,
    rng: &mut StdRng,
    labels: &mut Vec<u32>,
    scratch: &mut RelaxScratch,
) -> Option<(usize, u32)> {
    let n = model.n;
    let dest = n - 1;
    labels.clear();
    labels.resize(n, u32::MAX);
    labels[0] = 0;
    for slot in 1..=max_slots {
        let edges = model.sample_slot(rng);
        relax_slot(labels, &edges, case, scratch);
        if labels[dest] != u32::MAX {
            return Some((slot, labels[dest]));
        }
    }
    None
}

/// Monte-Carlo estimate of the probability that a path from node 0 to node
/// `N−1` exists with delay ≤ `t_slots` **and** hop count ≤ `max_hops`
/// (the constrained-path event of Lemma 1 / Corollary 1).
pub fn constrained_path_probability(
    model: DiscreteModel,
    case: ContactCase,
    t_slots: usize,
    max_hops: u32,
    reps: usize,
    seed: u64,
) -> f64 {
    assert!(reps > 0, "need at least one replication");
    let hits: usize = omnet_analysis::par_map_with(
        reps,
        <(Vec<u32>, RelaxScratch)>::default,
        |(labels, scratch), r| {
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_add(r as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let n = model.n;
            let dest = n - 1;
            labels.clear();
            labels.resize(n, u32::MAX);
            labels[0] = 0;
            for _ in 1..=t_slots {
                let edges = model.sample_slot(&mut rng);
                relax_slot(labels, &edges, case, scratch);
                if labels[dest] <= max_hops {
                    return 1usize;
                }
            }
            0usize
        },
    )
    .into_iter()
    .sum();
    hits as f64 / reps as f64
}

/// Converts the `(τ, γ)` parametrization of constraint (1) into concrete
/// slot and hop budgets for a network of `n` nodes:
/// `t = ⌈τ ln N⌉`, `k = max(1, ⌊γ t⌋)`.
pub fn budgets(n: usize, tau: f64, gamma: f64) -> (usize, u32) {
    assert!(n >= 2 && tau > 0.0 && gamma > 0.0);
    let t = (tau * (n as f64).ln()).ceil().max(1.0) as usize;
    let k = ((gamma * t as f64).floor().max(1.0)) as u32;
    (t, k)
}

/// Mean `(delay_slots / ln N, hops / ln N)` of the delay-optimal path over
/// `reps` floods — the empirical points of Figure 3. Replications where the
/// destination is never reached within `max_slots` are dropped (and counted
/// in `misses`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalPathEstimate {
    /// Mean delay divided by `ln N`.
    pub delay_coefficient: f64,
    /// Mean hop count divided by `ln N`.
    pub hop_coefficient: f64,
    /// Replications that never reached the destination.
    pub misses: usize,
    /// Replications that did.
    pub hits: usize,
}

/// Estimates the delay/hop coefficients of the delay-optimal path.
pub fn estimate_optimal_path(
    model: DiscreteModel,
    case: ContactCase,
    max_slots: usize,
    reps: usize,
    seed: u64,
) -> OptimalPathEstimate {
    assert!(reps > 0, "need at least one replication");
    let results = omnet_analysis::par_map_with(
        reps,
        <(Vec<u32>, RelaxScratch)>::default,
        |(labels, scratch), r| {
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_add(r as u64)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D),
            );
            delay_optimal_stats_with(model, case, max_slots, &mut rng, labels, scratch)
        },
    );
    let ln_n = (model.n as f64).ln();
    let mut d_sum = 0.0;
    let mut h_sum = 0.0;
    let mut hits = 0usize;
    for r in results.iter().flatten() {
        d_sum += r.0 as f64;
        h_sum += r.1 as f64;
        hits += 1;
    }
    OptimalPathEstimate {
        delay_coefficient: if hits > 0 {
            d_sum / hits as f64 / ln_n
        } else {
            f64::NAN
        },
        hop_coefficient: if hits > 0 {
            h_sum / hits as f64 / ln_n
        } else {
            f64::NAN
        },
        misses: reps - hits,
        hits,
    }
}

/// Natural log of the exact expected number of paths from a fixed source to
/// a fixed destination with delay ≤ `t_slots` and hop count ≤ `max_hops`
/// (Lemma 1, computed in closed combinatorial form):
///
/// `E[Π] = Σ_{j=1..k}  (N−2)(N−3)…(N−j) · p^j · T_j` with
/// `T_j = C(t, j)` (short: strictly increasing slot indices) or
/// `T_j = C(t+j−1, j)` (long: non-decreasing slot indices).
pub fn ln_expected_path_count(
    case: ContactCase,
    n: usize,
    lambda: f64,
    t_slots: usize,
    max_hops: usize,
) -> f64 {
    assert!(n >= 2 && lambda > 0.0 && t_slots >= 1 && max_hops >= 1);
    let ln_p = (lambda / n as f64).ln();
    let mut terms: Vec<f64> = Vec::with_capacity(max_hops);
    for j in 1..=max_hops {
        // intermediates: (N-2)(N-3)...(N-j), i.e. j-1 factors
        let mut ln_nodes = 0.0;
        for step in 0..(j - 1) {
            let factor = n as f64 - 2.0 - step as f64;
            if factor <= 0.0 {
                ln_nodes = f64::NEG_INFINITY;
                break;
            }
            ln_nodes += factor.ln();
        }
        if ln_nodes == f64::NEG_INFINITY {
            continue;
        }
        let ln_times = match case {
            ContactCase::Short => {
                if j > t_slots {
                    continue; // no strictly increasing assignment
                }
                ln_choose(t_slots as f64, j as f64)
            }
            ContactCase::Long => ln_choose((t_slots + j - 1) as f64, j as f64),
        };
        terms.push(ln_nodes + j as f64 * ln_p + ln_times);
    }
    log_sum_exp(&terms)
}

/// `ln C(a, b)` via `ln Γ`.
fn ln_choose(a: f64, b: f64) -> f64 {
    ln_gamma(a + 1.0) - ln_gamma(b + 1.0) - ln_gamma(a - b + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (g = 7, n = 9; ~15
/// significant digits).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

fn log_sum_exp(terms: &[f64]) -> f64 {
    let m = terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + terms.iter().map(|t| (t - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1u64, 1.0f64), (2, 1.0), (5, 24.0), (10, 362_880.0)] {
            let got = ln_gamma(n as f64);
            assert!(
                (got - f.ln()).abs() < 1e-10,
                "lnΓ({n}) = {got}, want {}",
                f.ln()
            );
        }
        // half-integer: Γ(1/2) = √π
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5.0, 2.0) - 10.0f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10.0, 0.0) - 0.0).abs() < 1e-10);
        assert!((ln_choose(52.0, 5.0) - 2_598_960.0f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn budgets_shapes() {
        let (t, k) = budgets(1000, 2.0, 0.5);
        assert_eq!(t, (2.0 * 1000f64.ln()).ceil() as usize);
        assert_eq!(k, (0.5 * t as f64).floor() as u32);
        let (_, k_min) = budgets(3, 0.1, 0.01);
        assert_eq!(k_min, 1);
    }

    #[test]
    fn relax_short_uses_one_hop_per_slot() {
        let mut scratch = RelaxScratch::default();
        let mut labels = vec![0u32, u32::MAX, u32::MAX];
        // chain 0-1, 1-2 in the SAME slot: short case reaches only node 1.
        relax_slot(
            &mut labels,
            &[(0, 1), (1, 2)],
            ContactCase::Short,
            &mut scratch,
        );
        assert_eq!(labels, vec![0, 1, u32::MAX]);
        // next slot, the second edge carries it on.
        relax_slot(&mut labels, &[(1, 2)], ContactCase::Short, &mut scratch);
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn relax_long_chains_within_slot() {
        let mut scratch = RelaxScratch::default();
        let mut labels = vec![0u32, u32::MAX, u32::MAX];
        relax_slot(
            &mut labels,
            &[(1, 2), (0, 1)],
            ContactCase::Long,
            &mut scratch,
        );
        assert_eq!(labels, vec![0, 1, 2]);
    }

    /// The old `Long` implementation, kept as the reference semantics: sweep
    /// every edge (both directions) until no label changes.
    fn relax_long_fixpoint_reference(labels: &mut [u32], edges: &[(u32, u32)]) {
        loop {
            let mut changed = false;
            for &(u, v) in edges {
                let (u, v) = (u as usize, v as usize);
                if labels[u] != u32::MAX && labels[u] + 1 < labels[v] {
                    labels[v] = labels[u] + 1;
                    changed = true;
                }
                if labels[v] != u32::MAX && labels[v] + 1 < labels[u] {
                    labels[u] = labels[v] + 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    #[test]
    fn relax_long_worklist_matches_reference_fixpoint() {
        // Pseudo-random sparse slot graphs, one shared scratch across all
        // of them (exercising buffer reuse between slots of different
        // shapes and sizes).
        let mut scratch = RelaxScratch::default();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            let n = 3 + (next() % 40) as u32;
            let m = (next() % (2 * n as u64)) as usize;
            let edges: Vec<(u32, u32)> = (0..m)
                .filter_map(|_| {
                    let u = (next() % n as u64) as u32;
                    let v = (next() % n as u64) as u32;
                    (u != v).then_some((u, v))
                })
                .collect();
            let mut labels: Vec<u32> = (0..n)
                .map(|_| {
                    if next() % 3 == 0 {
                        (next() % 5) as u32
                    } else {
                        u32::MAX
                    }
                })
                .collect();
            let mut want = labels.clone();
            relax_long_fixpoint_reference(&mut want, &edges);
            relax_slot(&mut labels, &edges, ContactCase::Long, &mut scratch);
            assert_eq!(labels, want, "round {round}, n={n}, edges={edges:?}");
            assert!(scratch.in_queue.iter().all(|q| !q), "queue marks leaked");
        }
    }

    #[test]
    fn supercritical_paths_found_subcritical_not() {
        let n = 400;
        let lambda = 1.0;
        let model = DiscreteModel::new(n, lambda);
        let m = theory::phase_maximum(ContactCase::Short, lambda).unwrap();
        let gs = theory::gamma_star(ContactCase::Short, lambda).unwrap();
        // comfortably supercritical: τ = 3/M
        let (t, k) = budgets(n, 3.0 / m, gs);
        let p_super = constrained_path_probability(model, ContactCase::Short, t, k, 60, 7);
        // comfortably subcritical: τ = 0.4/M (γ budget scaled along)
        let (t2, k2) = budgets(n, 0.4 / m, gs);
        let p_sub = constrained_path_probability(model, ContactCase::Short, t2, k2, 60, 7);
        assert!(
            p_super > 0.8,
            "supercritical probability too low: {p_super}"
        );
        assert!(p_sub < 0.2, "subcritical probability too high: {p_sub}");
    }

    #[test]
    fn optimal_path_estimates_track_theory_short() {
        // λ = 1, short contacts: delay coeff = 1/ln 2 ≈ 1.44, hop coeff =
        // 1/(2 ln 2) ≈ 0.72. Finite-size effects at N = 800 are sizeable, so
        // accept ±35%.
        let n = 800;
        let model = DiscreteModel::new(n, 1.0);
        let est = estimate_optimal_path(model, ContactCase::Short, 200, 40, 13);
        assert_eq!(est.misses, 0);
        let want_d = theory::delay_coefficient(ContactCase::Short, 1.0);
        let want_h = theory::hop_coefficient(ContactCase::Short, 1.0);
        assert!(
            (est.delay_coefficient - want_d).abs() < 0.35 * want_d,
            "delay {} vs {want_d}",
            est.delay_coefficient
        );
        assert!(
            (est.hop_coefficient - want_h).abs() < 0.35 * want_h,
            "hops {} vs {want_h}",
            est.hop_coefficient
        );
    }

    #[test]
    fn expected_count_exponent_matches_lemma1() {
        // Fix (τ, γ) and check that ln E[Π_N] / ln N converges to
        // −1 + τ(γ ln λ + h(γ)) as N grows (Θ up to ln-power factors, so
        // compare the slope between two large N values).
        let lambda = 1.0;
        let tau = 3.0;
        let gamma = 0.5;
        let theory_exp = theory::lemma1_exponent(ContactCase::Short, lambda, tau, gamma);
        let measure = |n: usize| {
            let (t, k) = budgets(n, tau, gamma);
            ln_expected_path_count(ContactCase::Short, n, lambda, t, k as usize)
        };
        let (n1, n2) = (2_000usize, 60_000usize);
        let slope = (measure(n2) - measure(n1)) / ((n2 as f64).ln() - (n1 as f64).ln());
        assert!(
            (slope - theory_exp).abs() < 0.25,
            "slope {slope} vs theory {theory_exp}"
        );
    }

    #[test]
    fn expected_count_monotone_in_budgets() {
        let base = ln_expected_path_count(ContactCase::Short, 500, 0.8, 20, 8);
        assert!(ln_expected_path_count(ContactCase::Short, 500, 0.8, 30, 8) > base);
        assert!(ln_expected_path_count(ContactCase::Short, 500, 0.8, 20, 12) > base);
        // long contacts allow more time assignments than short
        assert!(ln_expected_path_count(ContactCase::Long, 500, 0.8, 20, 8) > base);
    }
}
