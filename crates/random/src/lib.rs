//! Random temporal networks (§3 of the CoNEXT'07 paper): the discrete and
//! continuous models, the closed-form phase-transition theory behind
//! Figures 1–3, and the Monte-Carlo / exact-combinatorial machinery that
//! validates it.
//!
//! # Example: the phase transition, empirically
//!
//! ```
//! use omnet_random::{budgets, constrained_path_probability, theory, DiscreteModel};
//! use omnet_random::theory::ContactCase;
//!
//! let n = 300;
//! let lambda = 1.0;
//! let model = DiscreteModel::new(n, lambda);
//! let m = theory::phase_maximum(ContactCase::Short, lambda).unwrap();
//! let gamma = theory::gamma_star(ContactCase::Short, lambda).unwrap();
//!
//! // Super-critical delay budget: constrained paths exist almost surely.
//! let (t, k) = budgets(n, 3.0 / m, gamma);
//! let p = constrained_path_probability(model, ContactCase::Short, t, k, 20, 1);
//! assert!(p > 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod model;
pub mod modulated;
pub mod montecarlo;
pub mod renewal;
pub mod theory;

pub use model::{ContinuousModel, DiscreteModel, SlotEdges};
pub use modulated::ModulatedModel;
pub use montecarlo::{
    budgets, constrained_path_probability, delay_optimal_stats, estimate_optimal_path,
    ln_expected_path_count, OptimalPathEstimate,
};
pub use renewal::{InterContactLaw, RenewalModel};
pub use theory::ContactCase;
