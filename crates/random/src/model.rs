//! Random temporal network models (§3.1).
//!
//! * [`DiscreteModel`] — a sequence of independent uniform random graphs
//!   `G(N, p = λ/N)`, one per time slot (the generalization of Erdős–Rényi
//!   of §3.1.1);
//! * [`ContinuousModel`] — per-pair Poisson contact processes (§3.1.2),
//!   generated as instantaneous interval contacts so the trace machinery of
//!   `omnet-temporal`/`omnet-core` applies unchanged.

use omnet_temporal::{Trace, TraceBuilder};
use rand::Rng;

/// One slot of a discrete random temporal network: the edges present.
pub type SlotEdges = Vec<(u32, u32)>;

/// The discrete-time model: each slot, every unordered pair is in contact
/// independently with probability `p = λ/N`.
#[derive(Debug, Clone, Copy)]
pub struct DiscreteModel {
    /// Number of nodes `N`.
    pub n: usize,
    /// Contact rate λ: the expected number of contacts per node per slot is
    /// `(N−1)·λ/N ≈ λ`.
    pub lambda: f64,
}

impl DiscreteModel {
    /// Creates the model; requires `n >= 2` and `0 < λ <= n` (so that
    /// `p <= 1`).
    pub fn new(n: usize, lambda: f64) -> DiscreteModel {
        assert!(n >= 2, "need at least two nodes");
        assert!(
            lambda > 0.0 && lambda <= n as f64,
            "contact rate must satisfy 0 < λ <= N"
        );
        DiscreteModel { n, lambda }
    }

    /// The per-pair contact probability `p = λ/N`.
    pub fn edge_probability(&self) -> f64 {
        self.lambda / self.n as f64
    }

    /// Samples the edge set of one slot.
    ///
    /// Uses geometric skipping over the `N(N−1)/2` pair indices, so the cost
    /// is proportional to the expected number of edges (`≈ λN/2`), not to
    /// the number of pairs.
    pub fn sample_slot<R: Rng>(&self, rng: &mut R) -> SlotEdges {
        let p = self.edge_probability();
        let total = self.n * (self.n - 1) / 2;
        let mut edges = Vec::new();
        if p >= 1.0 {
            for i in 0..self.n as u32 {
                for j in (i + 1)..self.n as u32 {
                    edges.push((i, j));
                }
            }
            return edges;
        }
        let ln_q = (1.0 - p).ln(); // p < 1 here, so ln_q is finite and negative
        let mut idx: usize = 0;
        loop {
            // geometric skip: number of failures before the next success
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / ln_q).floor() as usize;
            idx = match idx.checked_add(skip) {
                Some(v) => v,
                None => break,
            };
            if idx >= total {
                break;
            }
            edges.push(pair_from_index(self.n, idx));
            idx += 1;
        }
        edges
    }

    /// Samples `slots` consecutive slot graphs.
    pub fn sample<R: Rng>(&self, slots: usize, rng: &mut R) -> Vec<SlotEdges> {
        (0..slots).map(|_| self.sample_slot(rng)).collect()
    }

    /// Materializes slot graphs as an interval-contact trace: the edge of
    /// slot `t` becomes the contact `[t·slot, (t+1)·slot]`. Consecutive
    /// slots touch, so the interval-based path algebra reproduces the
    /// *long-contact* semantics (`t_{i+1} ≥ t_i`), which is also the
    /// semantics of the empirical methodology (§4.2).
    pub fn to_trace(&self, slots: &[SlotEdges], slot_secs: f64) -> Trace {
        assert!(slot_secs > 0.0, "slot duration must be positive");
        let mut b =
            TraceBuilder::new()
                .num_nodes(self.n as u32)
                .window(omnet_temporal::Interval::secs(
                    0.0,
                    slots.len().max(1) as f64 * slot_secs,
                ));
        for (t, edges) in slots.iter().enumerate() {
            let s = t as f64 * slot_secs;
            for &(u, v) in edges {
                b.push(omnet_temporal::Contact::secs(u, v, s, s + slot_secs));
            }
        }
        b.build()
    }
}

/// Maps a flat pair index in `0..N(N−1)/2` to the unordered pair `(i, j)`,
/// enumerating `(0,1), (0,2), …, (0,N−1), (1,2), …`.
fn pair_from_index(n: usize, idx: usize) -> (u32, u32) {
    debug_assert!(idx < n * (n - 1) / 2);
    // Row i starts at offset i*n - i*(i+1)/2 - i… solve incrementally.
    let mut i = 0usize;
    let mut offset = 0usize;
    loop {
        let row = n - 1 - i;
        if idx < offset + row {
            let j = i + 1 + (idx - offset);
            return (i as u32, j as u32);
        }
        offset += row;
        i += 1;
    }
}

/// The continuous-time model: every unordered pair meets at the instants of
/// an independent Poisson process of rate `λ/N` per unit time, so each node
/// takes part in `≈ λ` contacts per unit time. Contacts are instantaneous.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousModel {
    /// Number of nodes `N`.
    pub n: usize,
    /// Per-node contact rate λ per unit time.
    pub lambda: f64,
}

impl ContinuousModel {
    /// Creates the model; requires `n >= 2` and `λ > 0`.
    pub fn new(n: usize, lambda: f64) -> ContinuousModel {
        assert!(n >= 2, "need at least two nodes");
        assert!(lambda > 0.0, "contact rate must be positive");
        ContinuousModel { n, lambda }
    }

    /// Generates all contacts in `[0, horizon)` as a trace of instantaneous
    /// contacts.
    ///
    /// The superposition of all pair processes is a Poisson process of rate
    /// `N(N−1)/2 · λ/N = (N−1)λ/2` whose events pick a uniform pair, which
    /// is how the sampling is implemented (one exponential stream instead of
    /// `N²/2`).
    pub fn generate<R: Rng>(&self, horizon: f64, rng: &mut R) -> Trace {
        assert!(horizon > 0.0, "horizon must be positive");
        let total_rate = (self.n - 1) as f64 * self.lambda / 2.0;
        let mut b = TraceBuilder::new()
            .num_nodes(self.n as u32)
            .window(omnet_temporal::Interval::secs(0.0, horizon));
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t += -u.ln() / total_rate;
            if t >= horizon {
                break;
            }
            let pair_count = self.n * (self.n - 1) / 2;
            let idx = rng.gen_range(0..pair_count);
            let (i, j) = pair_from_index(self.n, idx);
            b.push(omnet_temporal::Contact::secs(i, j, t, t));
        }
        b.build()
    }

    /// Expected number of contacts in `[0, horizon)`.
    pub fn expected_contacts(&self, horizon: f64) -> f64 {
        (self.n - 1) as f64 * self.lambda / 2.0 * horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnet_temporal::Time;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_index_enumeration_is_bijective() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (i, j) = pair_from_index(n, idx);
            assert!(i < j && (j as usize) < n);
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len(), 21);
        assert_eq!(pair_from_index(n, 0), (0, 1));
        assert_eq!(pair_from_index(n, 5), (0, 6));
        assert_eq!(pair_from_index(n, 6), (1, 2));
        assert_eq!(pair_from_index(n, 20), (5, 6));
    }

    #[test]
    fn slot_edge_count_matches_expectation() {
        let m = DiscreteModel::new(200, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0usize;
        let reps = 400;
        for _ in 0..reps {
            total += m.sample_slot(&mut rng).len();
        }
        let mean = total as f64 / reps as f64;
        // expected λ(N−1)/2 = 1.5·199/2 = 149.25
        let expected = 1.5 * 199.0 / 2.0;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn slot_edges_are_valid_pairs() {
        let m = DiscreteModel::new(50, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            for (i, j) in m.sample_slot(&mut rng) {
                assert!(i < j && j < 50);
            }
        }
    }

    #[test]
    fn dense_limit_full_graph() {
        let m = DiscreteModel::new(6, 6.0); // p = 1
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample_slot(&mut rng).len(), 15);
    }

    #[test]
    fn to_trace_layout() {
        let m = DiscreteModel::new(4, 2.0);
        let slots = vec![vec![(0u32, 1u32)], vec![], vec![(1, 2), (2, 3)]];
        let t = m.to_trace(&slots, 10.0);
        assert_eq!(t.num_contacts(), 3);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.span(), omnet_temporal::Interval::secs(0.0, 30.0));
        let c = t.contacts()[0];
        assert_eq!(c.start(), Time::secs(0.0));
        assert_eq!(c.end(), Time::secs(10.0));
        let last = t.contacts()[2];
        assert_eq!(last.start(), Time::secs(20.0));
    }

    #[test]
    fn continuous_contact_count_matches_expectation() {
        let m = ContinuousModel::new(60, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let horizon = 50.0;
        let t = m.generate(horizon, &mut rng);
        let expected = m.expected_contacts(horizon); // 59/2*50 = 1475
        let got = t.num_contacts() as f64;
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "got {got} vs {expected}"
        );
        // instantaneous contacts inside the horizon
        assert!(t
            .contacts()
            .iter()
            .all(|c| c.duration() == omnet_temporal::Dur::ZERO
                && c.start() >= Time::ZERO
                && c.end() <= Time::secs(horizon)));
    }

    #[test]
    #[should_panic(expected = "0 < λ <= N")]
    fn discrete_rejects_p_above_one() {
        let _ = DiscreteModel::new(4, 5.0);
    }
}
