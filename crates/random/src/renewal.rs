//! Renewal contact processes with general inter-contact laws (§3.4).
//!
//! The paper's random models assume Bernoulli/Poisson contacts, hence
//! light-tailed inter-contact times — an assumption prior measurements
//! ([2],[9]) show holds only at day/week timescales. §3.4 argues the results
//! extend to renewal processes with finite-variance inter-contact times and
//! *conjectures the heavy tail inflates delay but barely moves the hop
//! count of delay-optimal paths*. This module provides the machinery to test
//! that: per-pair renewal processes whose gaps follow exponential, Pareto or
//! deterministic laws with a common mean, so rate is held fixed while the
//! shape varies.

use omnet_temporal::{Trace, TraceBuilder};
use rand::Rng;

/// Inter-contact gap law, parameterized to a given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterContactLaw {
    /// Exponential gaps (the Poisson model of §3.1.2).
    Exponential,
    /// Pareto gaps with tail index `alpha > 1` (finite mean; infinite
    /// variance when `alpha <= 2` — the empirically observed regime).
    Pareto {
        /// Tail index.
        alpha: f64,
    },
    /// Deterministic gaps (periodic meetings, e.g. bus schedules [18]).
    Deterministic,
}

impl InterContactLaw {
    /// Samples one gap with the requested mean.
    pub fn sample_gap<R: Rng>(&self, mean: f64, rng: &mut R) -> f64 {
        assert!(mean > 0.0, "mean gap must be positive");
        match self {
            InterContactLaw::Exponential => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() * mean
            }
            InterContactLaw::Pareto { alpha } => {
                assert!(*alpha > 1.0, "Pareto gaps need alpha > 1 for a finite mean");
                // mean = xm * alpha / (alpha - 1)  =>  xm = mean (alpha-1)/alpha
                let xm = mean * (alpha - 1.0) / alpha;
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                xm * u.powf(-1.0 / alpha)
            }
            InterContactLaw::Deterministic => mean,
        }
    }

    /// The coefficient of variation (σ/μ) of the law; `None` when the
    /// variance is infinite.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        match self {
            InterContactLaw::Exponential => Some(1.0),
            InterContactLaw::Pareto { alpha } => {
                if *alpha > 2.0 {
                    // var = xm² α / ((α−1)²(α−2)); with xm = μ(α−1)/α:
                    // var = μ² / (α(α−2))
                    Some((1.0 / (alpha * (alpha - 2.0))).sqrt())
                } else {
                    None
                }
            }
            InterContactLaw::Deterministic => Some(0.0),
        }
    }
}

/// A network of per-pair renewal contact processes with common rate λ per
/// node (mean pair gap `N/λ`, matching [`crate::ContinuousModel`]'s rate
/// convention) and a configurable gap law.
#[derive(Debug, Clone, Copy)]
pub struct RenewalModel {
    /// Number of nodes.
    pub n: usize,
    /// Per-node contact rate λ per unit time.
    pub lambda: f64,
    /// The gap law.
    pub law: InterContactLaw,
}

impl RenewalModel {
    /// Creates the model; requires `n >= 2`, `λ > 0`.
    pub fn new(n: usize, lambda: f64, law: InterContactLaw) -> RenewalModel {
        assert!(n >= 2, "need at least two nodes");
        assert!(lambda > 0.0, "contact rate must be positive");
        RenewalModel { n, lambda, law }
    }

    /// Mean gap between consecutive contacts of one pair.
    pub fn mean_pair_gap(&self) -> f64 {
        self.n as f64 / self.lambda
    }

    /// Generates all contacts in `[0, horizon)` as instantaneous contacts.
    ///
    /// Each pair's phase is randomized: the first event lands uniformly
    /// inside an initial sampled gap. This avoids the degenerate
    /// synchronization a fixed origin would create for low-variance laws
    /// (with deterministic gaps every pair would otherwise meet at the same
    /// instants); it is not the full inspection-paradox age correction,
    /// which matters little over horizons ≫ the mean gap.
    pub fn generate<R: Rng>(&self, horizon: f64, rng: &mut R) -> Trace {
        assert!(horizon > 0.0, "horizon must be positive");
        let mean = self.mean_pair_gap();
        let mut b = TraceBuilder::new()
            .num_nodes(self.n as u32)
            .window(omnet_temporal::Interval::secs(0.0, horizon));
        for u in 0..self.n as u32 {
            for v in (u + 1)..self.n as u32 {
                let mut t = rng.gen::<f64>() * self.law.sample_gap(mean, rng);
                while t < horizon {
                    b.push(omnet_temporal::Contact::secs(u, v, t, t));
                    t += self.law.sample_gap(mean, rng);
                }
            }
        }
        b.build()
    }

    /// Expected number of contacts in `[0, horizon)` (renewal theory:
    /// ≈ pairs · horizon / mean gap for horizons well above the mean).
    pub fn expected_contacts(&self, horizon: f64) -> f64 {
        let pairs = (self.n * (self.n - 1) / 2) as f64;
        pairs * horizon / self.mean_pair_gap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gap_means_match_across_laws() {
        let mut rng = StdRng::seed_from_u64(8);
        for law in [
            InterContactLaw::Exponential,
            InterContactLaw::Pareto { alpha: 2.5 },
            InterContactLaw::Deterministic,
        ] {
            let mean_target = 40.0;
            let n = 40_000;
            let mean: f64 = (0..n)
                .map(|_| law.sample_gap(mean_target, &mut rng))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - mean_target).abs() < 0.08 * mean_target,
                "{law:?}: mean {mean}"
            );
        }
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean = 10.0;
        let thresh = 100.0; // 10x the mean
        let count = |law: InterContactLaw, rng: &mut StdRng| {
            (0..50_000)
                .filter(|_| law.sample_gap(mean, rng) > thresh)
                .count()
        };
        let exp = count(InterContactLaw::Exponential, &mut rng);
        let par = count(InterContactLaw::Pareto { alpha: 1.5 }, &mut rng);
        assert!(par > 10 * exp.max(1), "pareto {par} vs exp {exp}");
    }

    #[test]
    fn coefficient_of_variation_values() {
        assert_eq!(
            InterContactLaw::Deterministic.coefficient_of_variation(),
            Some(0.0)
        );
        assert_eq!(
            InterContactLaw::Exponential.coefficient_of_variation(),
            Some(1.0)
        );
        assert_eq!(
            InterContactLaw::Pareto { alpha: 1.5 }.coefficient_of_variation(),
            None
        );
        let cv = InterContactLaw::Pareto { alpha: 3.0 }
            .coefficient_of_variation()
            .unwrap();
        assert!((cv - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn trace_volume_matches_rate_for_all_laws() {
        let mut rng = StdRng::seed_from_u64(10);
        for law in [
            InterContactLaw::Exponential,
            InterContactLaw::Pareto { alpha: 2.5 },
            InterContactLaw::Deterministic,
        ] {
            let m = RenewalModel::new(30, 1.0, law);
            let horizon = 400.0;
            let t = m.generate(horizon, &mut rng);
            let expected = m.expected_contacts(horizon);
            let got = t.num_contacts() as f64;
            assert!(
                (got - expected).abs() < 0.15 * expected,
                "{law:?}: {got} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn infinite_mean_pareto_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = InterContactLaw::Pareto { alpha: 0.9 }.sample_gap(1.0, &mut rng);
    }
}
