//! Closed-form phase-transition theory (§3.2–3.3).
//!
//! For a random temporal network with contact rate λ, the expected number of
//! paths with delay ≤ τ·ln N and hop count ≤ γ·τ·ln N grows like
//! `N^(−1 + τ·(γ ln λ + f(γ)))` (Lemma 1), where `f = h` (binary entropy)
//! in the short-contact case and `f = g` in the long-contact case. The sign
//! of the exponent separates the sub- and super-critical phases; maximizing
//! `γ ln λ + f(γ)` over γ yields the critical delay coefficient and the
//! hop-count coefficient of the delay-optimal path plotted in Figures 1–3.

/// Which per-slot forwarding model (§3.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContactCase {
    /// At most one contact per time slot may be used by a path.
    Short,
    /// Any number of contacts may be chained inside one slot.
    Long,
}

/// Binary entropy `h(x) = −x ln x − (1−x) ln(1−x)` on `[0, 1]`,
/// with `h(0) = h(1) = 0`.
pub fn binary_entropy(x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "binary entropy domain is [0,1]");
    let term = |p: f64| if p <= 0.0 { 0.0 } else { -p * p.ln() };
    term(x) + term(1.0 - x)
}

/// The long-contact counterpart `g(x) = (1+x) ln(1+x) − x ln x` on `x ≥ 0`,
/// with `g(0) = 0`.
pub fn g_function(x: f64) -> f64 {
    assert!(x >= 0.0, "g is defined for non-negative x");
    if x == 0.0 {
        return 0.0;
    }
    (1.0 + x) * (1.0 + x).ln() - x * x.ln()
}

/// The phase function `γ ln λ + f(γ)` whose sign against `1/τ` decides the
/// phase (Corollary 1). Domain: `γ ∈ [0, 1]` for `Short`, `γ ≥ 0` for
/// `Long`.
pub fn phase_value(case: ContactCase, lambda: f64, gamma: f64) -> f64 {
    assert!(lambda > 0.0, "contact rate must be positive");
    let f = match case {
        ContactCase::Short => binary_entropy(gamma),
        ContactCase::Long => g_function(gamma),
    };
    if gamma == 0.0 {
        f
    } else {
        gamma * lambda.ln() + f
    }
}

/// The maximum of the phase function over γ: `M = ln(1+λ)` (short) or
/// `M = −ln(1−λ)` (long, λ < 1). `None` in the long case with λ ≥ 1, where
/// the function increases without bound.
pub fn phase_maximum(case: ContactCase, lambda: f64) -> Option<f64> {
    assert!(lambda > 0.0, "contact rate must be positive");
    match case {
        ContactCase::Short => Some((1.0 + lambda).ln()),
        ContactCase::Long => {
            if lambda < 1.0 {
                Some(-(1.0 - lambda).ln())
            } else {
                None
            }
        }
    }
}

/// The maximizing γ*: `λ/(1+λ)` (short) or `λ/(1−λ)` (long, λ < 1).
pub fn gamma_star(case: ContactCase, lambda: f64) -> Option<f64> {
    assert!(lambda > 0.0, "contact rate must be positive");
    match case {
        ContactCase::Short => Some(lambda / (1.0 + lambda)),
        ContactCase::Long => {
            if lambda < 1.0 {
                Some(lambda / (1.0 - lambda))
            } else {
                None
            }
        }
    }
}

/// The delay of the delay-optimal path divided by `ln N` (the critical τ):
/// `1/ln(1+λ)` (short), `1/(−ln(1−λ))` (long λ < 1), and `0` in the
/// almost-simultaneously-connected regime (long, λ > 1). At exactly λ = 1
/// (long) the coefficient is also 0 in the large-N limit.
pub fn delay_coefficient(case: ContactCase, lambda: f64) -> f64 {
    match phase_maximum(case, lambda) {
        Some(m) => 1.0 / m,
        None => 0.0,
    }
}

/// The hop count of the delay-optimal path divided by `ln N` (Figure 3):
///
/// ```
/// use omnet_random::theory::{hop_coefficient, ContactCase};
/// // paper §3.2.2's example: short contacts at λ = 0.5
/// let k = hop_coefficient(ContactCase::Short, 0.5);
/// assert!((k - 0.822).abs() < 1e-3);
/// ```
///
/// * short: `λ / ((1+λ) ln(1+λ))`;
/// * long, λ < 1: `λ / ((1−λ)(−ln(1−λ)))`;
/// * long, λ > 1: `1 / ln λ` (paths inside the giant component);
/// * long, λ = 1: `+∞` (the singularity visible in Figure 3).
///
/// Both cases converge to 1 as λ → 0: the hop count of the delay-optimal
/// path becomes `ln N`, insensitive to the contact rate (§3.3).
pub fn hop_coefficient(case: ContactCase, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "contact rate must be positive");
    match case {
        ContactCase::Short => lambda / ((1.0 + lambda) * (1.0 + lambda).ln()),
        ContactCase::Long => {
            if lambda < 1.0 {
                lambda / ((1.0 - lambda) * -(1.0 - lambda).ln())
            } else if lambda == 1.0 {
                f64::INFINITY
            } else {
                1.0 / lambda.ln()
            }
        }
    }
}

/// Lemma 1's growth exponent: `E[Π_N] = Θ(N^exponent)` with
/// `exponent = −1 + τ (γ ln λ + f(γ))`.
pub fn lemma1_exponent(case: ContactCase, lambda: f64, tau: f64, gamma: f64) -> f64 {
    assert!(tau > 0.0, "delay coefficient must be positive");
    -1.0 + tau * phase_value(case, lambda, gamma)
}

/// Corollary 1: `true` when `(τ, γ)` lies in the super-critical phase
/// (`1/τ < γ ln λ + f(γ)`, expected path count diverging).
pub fn supercritical(case: ContactCase, lambda: f64, tau: f64, gamma: f64) -> bool {
    lemma1_exponent(case, lambda, tau, gamma) > 0.0
}

/// The super-critical γ-interval `[γ₁, γ₂]` for a given τ, found numerically
/// by bisection on each side of γ* (empty when τ is sub-critical).
pub fn gamma_interval(case: ContactCase, lambda: f64, tau: f64) -> Option<(f64, f64)> {
    assert!(tau > 0.0, "delay coefficient must be positive");
    let target = 1.0 / tau;
    let hi_domain = match case {
        ContactCase::Short => 1.0,
        // the phase function grows like γ ln λ for λ>1 (unbounded) and is
        // eventually decreasing for λ<=1; 64 safely brackets either way.
        ContactCase::Long => 64.0,
    };
    let peak_g = match gamma_star(case, lambda) {
        Some(gs) => gs.min(hi_domain),
        None => hi_domain, // long, λ>=1: increasing; "peak" at right edge
    };
    if phase_value(case, lambda, peak_g) <= target {
        return None;
    }
    let f = |g: f64| phase_value(case, lambda, g) - target;
    let bisect = |mut lo: f64, mut hi: f64, rising: bool| {
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let v = f(mid);
            if (v > 0.0) == rising {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    };
    // Left edge: f(0+) relative to target.
    let g1 = if f(1e-12) >= 0.0 {
        0.0
    } else {
        bisect(1e-12, peak_g, true)
    };
    // Right edge.
    let g2 = if peak_g >= hi_domain || f(hi_domain) >= 0.0 {
        hi_domain
    } else {
        bisect(peak_g, hi_domain, false)
    };
    Some((g1, g2))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn entropy_endpoints_and_symmetry() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - std::f64::consts::LN_2).abs() < EPS);
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < EPS);
    }

    #[test]
    fn g_values() {
        assert_eq!(g_function(0.0), 0.0);
        assert!((g_function(1.0) - 2.0 * std::f64::consts::LN_2).abs() < EPS);
        // g is increasing
        assert!(g_function(2.0) > g_function(1.0));
    }

    #[test]
    fn short_case_maximum_at_gamma_star() {
        for lambda in [0.5, 1.0, 1.5] {
            let gs = gamma_star(ContactCase::Short, lambda).unwrap();
            let m = phase_maximum(ContactCase::Short, lambda).unwrap();
            assert!((phase_value(ContactCase::Short, lambda, gs) - m).abs() < EPS);
            // nearby values are below the maximum
            assert!(phase_value(ContactCase::Short, lambda, gs + 0.01) < m);
            assert!(phase_value(ContactCase::Short, lambda, gs - 0.01) < m);
        }
    }

    #[test]
    fn long_case_maximum_below_one() {
        let lambda = 0.5;
        let gs = gamma_star(ContactCase::Long, lambda).unwrap();
        assert!((gs - 1.0).abs() < EPS); // 0.5 / 0.5
        let m = phase_maximum(ContactCase::Long, lambda).unwrap();
        assert!((phase_value(ContactCase::Long, lambda, gs) - m).abs() < EPS);
        assert!((m - std::f64::consts::LN_2).abs() < EPS); // -ln(0.5)
    }

    #[test]
    fn long_case_unbounded_above_one() {
        assert!(phase_maximum(ContactCase::Long, 1.5).is_none());
        assert!(gamma_star(ContactCase::Long, 1.5).is_none());
        // increasing without bound
        assert!(
            phase_value(ContactCase::Long, 1.5, 50.0) > phase_value(ContactCase::Long, 1.5, 10.0)
        );
    }

    #[test]
    fn paper_numeric_examples() {
        // Short, λ = 0.5: delay coefficient 1/ln 1.5 ≈ 2.466 ("t ≈ 2.47 ln N").
        let tau = delay_coefficient(ContactCase::Short, 0.5);
        assert!((tau - 2.466).abs() < 5e-3, "tau = {tau}");
        // its hop coefficient γ*·τ = (1/3)·2.466 ≈ 0.822.
        let k = hop_coefficient(ContactCase::Short, 0.5);
        assert!((k - 0.8221).abs() < 5e-4, "k = {k}");
        // Long, λ = 0.5: delay and hop coefficients both 1/ln 2 ≈ 1.443
        // ("the same number of hops").
        let tau_l = delay_coefficient(ContactCase::Long, 0.5);
        let k_l = hop_coefficient(ContactCase::Long, 0.5);
        assert!((tau_l - std::f64::consts::LOG2_E).abs() < 5e-4);
        assert!((k_l - tau_l).abs() < EPS);
    }

    #[test]
    fn hop_coefficient_limits() {
        // λ -> 0: both cases converge to 1 (k ≈ ln N, §3.3).
        for case in [ContactCase::Short, ContactCase::Long] {
            let k = hop_coefficient(case, 1e-6);
            assert!((k - 1.0).abs() < 1e-4, "{case:?}: {k}");
        }
        // singularity at λ = 1 in the long case only
        assert!(hop_coefficient(ContactCase::Long, 1.0).is_infinite());
        assert!(hop_coefficient(ContactCase::Short, 1.0).is_finite());
        // dense regime: long case ≈ ln N / ln λ
        assert!((hop_coefficient(ContactCase::Long, std::f64::consts::E) - 1.0).abs() < EPS);
    }

    #[test]
    fn supercritical_dichotomy() {
        let lambda = 0.5;
        let m = phase_maximum(ContactCase::Short, lambda).unwrap();
        let gs = gamma_star(ContactCase::Short, lambda).unwrap();
        // τ below critical: no γ is supercritical.
        let tau = 0.9 / m;
        for i in 1..100 {
            let gamma = i as f64 / 100.0;
            assert!(!supercritical(ContactCase::Short, lambda, tau, gamma));
        }
        // τ above critical: γ* is supercritical.
        let tau = 1.1 / m;
        assert!(supercritical(ContactCase::Short, lambda, tau, gs));
    }

    #[test]
    fn gamma_interval_brackets_gamma_star() {
        let lambda = 0.5;
        let m = phase_maximum(ContactCase::Short, lambda).unwrap();
        let gs = gamma_star(ContactCase::Short, lambda).unwrap();
        let (g1, g2) = gamma_interval(ContactCase::Short, lambda, 1.2 / m).unwrap();
        assert!(g1 < gs && gs < g2, "({g1}, {g2}) should bracket {gs}");
        // boundary values sit on the threshold
        let target = m / 1.2;
        assert!((phase_value(ContactCase::Short, lambda, g1) - target).abs() < 1e-6);
        assert!((phase_value(ContactCase::Short, lambda, g2) - target).abs() < 1e-6);
        // subcritical τ: empty interval
        assert!(gamma_interval(ContactCase::Short, lambda, 0.9 / m).is_none());
    }

    #[test]
    fn gamma_interval_long_dense_reaches_domain_edge() {
        // λ > 1, long contacts: any τ admits paths; interval extends to the
        // domain edge on the right.
        let (g1, g2) = gamma_interval(ContactCase::Long, 1.5, 0.05).unwrap();
        assert!(g1 > 0.0);
        assert_eq!(g2, 64.0);
        // the left edge is near 1/(τ ln λ): γ ln λ ≈ 1/τ for large γ…
        // the asymptote argument of §3.2.3.
        let predicted = 1.0 / (0.05 * 1.5f64.ln());
        assert!(g1 < predicted, "g1 = {g1} should undercut {predicted}");
    }

    #[test]
    fn exponent_sign_matches_phase() {
        let e_sub = lemma1_exponent(ContactCase::Short, 0.5, 0.5, 0.3);
        assert!(e_sub < 0.0);
        let gs = gamma_star(ContactCase::Short, 0.5).unwrap();
        let e_super = lemma1_exponent(ContactCase::Short, 0.5, 5.0, gs);
        assert!(e_super > 0.0);
    }
}
