//! Property tests of the contact-sequence algebra (§4.2): construction via
//! `extended` always yields valid sequences, summaries agree with the
//! concatenation rule, and schedules witness validity.

use omnet_temporal::{Contact, ContactSeq, LdEa, NodeId, Time};
use proptest::prelude::*;

fn contact_strategy() -> impl Strategy<Value = Contact> {
    (0u32..5, 0u32..5, 0u32..60, 0u32..30).prop_filter_map("self contact", |(u, v, s, d)| {
        if u == v {
            None
        } else {
            Some(Contact::secs(u, v, s as f64, (s + d) as f64))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn extended_sequences_are_valid(contacts in prop::collection::vec(contact_strategy(), 1..7)) {
        let mut seq = ContactSeq::at(NodeId(0));
        for c in &contacts {
            if let Some(next) = seq.extended(c) {
                seq = next;
                prop_assert!(seq.is_valid(), "invalid after extending with {c:?}");
            }
        }
        // summary matches the fold of single-contact summaries
        let mut folded = LdEa::EMPTY;
        for c in seq.contacts() {
            folded = folded.extend(c).expect("sequence was built validly");
        }
        prop_assert_eq!(seq.summary(), folded);
    }

    #[test]
    fn schedule_exists_iff_t_before_ld(
        contacts in prop::collection::vec(contact_strategy(), 1..6),
        t in 0u32..80,
    ) {
        let Some(seq) = ContactSeq::build(NodeId(0), &contacts) else {
            return Ok(());
        };
        let t = Time::secs(t as f64);
        let summary = seq.summary();
        match seq.schedule(t) {
            Some(times) => {
                prop_assert!(t <= summary.ld);
                // non-decreasing, inside intervals, ends at delivery time
                for (i, (ct, at)) in seq.contacts().iter().zip(&times).enumerate() {
                    prop_assert!(ct.interval.contains(*at), "hop {i} out of interval");
                    if i > 0 {
                        prop_assert!(times[i - 1] <= *at);
                    }
                }
                if let Some(last) = times.last() {
                    prop_assert_eq!(*last, summary.delivery(t));
                }
            }
            None => prop_assert!(t > summary.ld),
        }
    }

    #[test]
    fn dominance_is_consistent_with_delivery(
        (ld1, ea1, ld2, ea2) in (0u32..50, 0u32..50, 0u32..50, 0u32..50),
        probes in prop::collection::vec(0u32..60, 1..10),
    ) {
        let a = LdEa { ld: Time::secs(ld1 as f64), ea: Time::secs(ea1 as f64) };
        let b = LdEa { ld: Time::secs(ld2 as f64), ea: Time::secs(ea2 as f64) };
        if a.dominates(b) {
            for p in probes {
                let t = Time::secs(p as f64);
                prop_assert!(
                    a.delivery(t) <= b.delivery(t),
                    "dominating summary delivered later at {t}"
                );
            }
        }
    }

    #[test]
    fn concat_monotone_in_both_arguments(
        (l1, e1, l2, e2) in (0u32..40, 0u32..40, 0u32..40, 0u32..40),
    ) {
        let left = LdEa { ld: Time::secs(l1 as f64), ea: Time::secs(e1 as f64) };
        let right = LdEa { ld: Time::secs(l2 as f64), ea: Time::secs(e2 as f64) };
        if let Some(joined) = left.concat(right) {
            // the compound never departs later than either part nor arrives
            // earlier than either part
            prop_assert!(joined.ld <= left.ld && joined.ld <= right.ld);
            prop_assert!(joined.ea >= left.ea && joined.ea >= right.ea);
            // compound LD/EA are exactly min/max
            prop_assert_eq!(joined.ld, left.ld.min(right.ld));
            prop_assert_eq!(joined.ea, left.ea.max(right.ea));
        } else {
            prop_assert!(left.ea > right.ld);
        }
    }
}
