//! Mechanically checkable structural invariants (the correctness layer).
//!
//! The paper's results rest on three structural guarantees that the rest of
//! the workspace assumes everywhere but, historically, only stated in doc
//! comments:
//!
//! 1. **Trace canonical form** — contacts sorted by `(start, end, a, b)`,
//!    endpoints inside the node universe and canonically ordered (`a < b`),
//!    every interval finite and inside the observation window (§5.1);
//! 2. **Sequence validity (Eq. 2)** — every contact of a sequence ends no
//!    earlier than the latest beginning among its predecessors, and
//!    consecutive hops share a device;
//! 3. **Frontier strictness (condition 4)** — delivery functions are strict
//!    Pareto frontiers: `LD` and `EA` both strictly increasing.
//!
//! This module gives those guarantees a typed error ([`InvariantViolation`]),
//! free-standing checkers over raw parts (so *corrupt* inputs can be probed
//! without first constructing the type whose constructor would fix or reject
//! them), and an enforcement gate ([`enforce`]) that is compiled out of
//! plain release builds, active under `debug_assertions`, and **always on**
//! when the workspace-wide `strict-invariants` feature is enabled.

use crate::contact::{Contact, Interval};
use crate::sequence::LdEa;
use crate::time::Time;

/// True when invariant checks run in this build: debug builds and any build
/// with the `strict-invariants` feature. The checks guard the structural
/// assumptions of §3 (canonical traces), §4.2 (sequence validity, Eq. 2)
/// and §4.3 (strict frontiers, condition 4).
pub const STRICT: bool = cfg!(any(debug_assertions, feature = "strict-invariants"));

/// A broken structural invariant (§3 trace form, §4.2 sequence validity,
/// §4.3 frontier strictness), with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Trace contacts are not sorted by `(start, end, a, b)` at `index`.
    UnsortedContacts {
        /// Index of the first contact that sorts before its predecessor.
        index: usize,
    },
    /// A contact's interval lies (partly) outside the observation window.
    ContactOutsideWindow {
        /// Index of the offending contact.
        index: usize,
    },
    /// A contact endpoint is `>= num_nodes`.
    EndpointOutsideUniverse {
        /// Index of the offending contact.
        index: usize,
    },
    /// A contact's endpoints are not in canonical `a < b` order (this also
    /// covers self-contacts, where `a == b`).
    NonCanonicalEndpoints {
        /// Index of the offending contact.
        index: usize,
    },
    /// A contact interval is inverted or non-finite.
    InvalidInterval {
        /// Index of the offending contact.
        index: usize,
    },
    /// The internal-device count exceeds the node universe.
    InternalExceedsUniverse,
    /// A sequence hop does not touch the device reached so far.
    DetachedHop {
        /// Zero-based hop index.
        hop: usize,
    },
    /// A sequence breaks Eq. (2): the contact at `hop` ends before the
    /// latest beginning among its predecessors.
    BrokenChronology {
        /// Zero-based hop index.
        hop: usize,
    },
    /// A sequence's recorded node chain disagrees with its contacts.
    InconsistentNodeChain {
        /// Zero-based hop index.
        hop: usize,
    },
    /// A delivery function is not a strict Pareto frontier at `index`:
    /// `LD` or `EA` fails to strictly increase (condition 4).
    FrontierOrder {
        /// Index of the second pair of the offending adjacent pair.
        index: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::UnsortedContacts { index } => {
                write!(f, "contact {index} sorts before its predecessor")
            }
            InvariantViolation::ContactOutsideWindow { index } => {
                write!(f, "contact {index} lies outside the observation window")
            }
            InvariantViolation::EndpointOutsideUniverse { index } => {
                write!(f, "contact {index} touches a node outside the universe")
            }
            InvariantViolation::NonCanonicalEndpoints { index } => {
                write!(
                    f,
                    "contact {index} has non-canonical endpoints (want a < b)"
                )
            }
            InvariantViolation::InvalidInterval { index } => {
                write!(f, "contact {index} has an inverted or non-finite interval")
            }
            InvariantViolation::InternalExceedsUniverse => {
                write!(f, "internal-device count exceeds the node universe")
            }
            InvariantViolation::DetachedHop { hop } => {
                write!(f, "hop {hop} does not touch the device reached so far")
            }
            InvariantViolation::BrokenChronology { hop } => {
                write!(f, "hop {hop} ends before an earlier hop begins (Eq. 2)")
            }
            InvariantViolation::InconsistentNodeChain { hop } => {
                write!(f, "node chain disagrees with contacts at hop {hop}")
            }
            InvariantViolation::FrontierOrder { index } => {
                write!(
                    f,
                    "frontier pair {index} does not strictly dominate order (condition 4)"
                )
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Checks the canonical-trace invariants (§3) over raw parts.
///
/// This is the checker behind `Trace::validate`, exposed over raw slices so
/// tests and external tools can probe inputs that `TraceBuilder` would
/// silently canonicalize (e.g. an unsorted contact vector).
pub fn validate_trace_parts(
    num_nodes: u32,
    internal: u32,
    span: Interval,
    contacts: &[Contact],
) -> Result<(), InvariantViolation> {
    if internal > num_nodes {
        return Err(InvariantViolation::InternalExceedsUniverse);
    }
    let mut prev: Option<&Contact> = None;
    for (index, c) in contacts.iter().enumerate() {
        if !(c.start().is_finite() && c.end().is_finite() && c.start() <= c.end()) {
            return Err(InvariantViolation::InvalidInterval { index });
        }
        if c.a >= c.b {
            return Err(InvariantViolation::NonCanonicalEndpoints { index });
        }
        if c.b.0 >= num_nodes {
            return Err(InvariantViolation::EndpointOutsideUniverse { index });
        }
        if c.start() < span.start || span.end < c.end() {
            return Err(InvariantViolation::ContactOutsideWindow { index });
        }
        if let Some(p) = prev {
            if (p.start(), p.end(), p.a, p.b) > (c.start(), c.end(), c.a, c.b) {
                return Err(InvariantViolation::UnsortedContacts { index });
            }
        }
        prev = Some(c);
    }
    Ok(())
}

/// Checks the sequence invariants (§4.2, Eq. 2, plus endpoint chaining)
/// over a raw hop list anchored at `origin`, returning the node chain on
/// success.
pub fn validate_sequence_parts(
    origin: crate::node::NodeId,
    contacts: &[Contact],
) -> Result<Vec<crate::node::NodeId>, InvariantViolation> {
    let mut nodes = vec![origin];
    let mut here = origin;
    let mut max_beg = Time::NEG_INF;
    for (hop, c) in contacts.iter().enumerate() {
        if !c.touches(here) {
            return Err(InvariantViolation::DetachedHop { hop });
        }
        if c.end() < max_beg {
            return Err(InvariantViolation::BrokenChronology { hop });
        }
        max_beg = max_beg.max(c.start());
        here = c.peer_of(here);
        nodes.push(here);
    }
    Ok(nodes)
}

/// Checks the strict-frontier invariant (§4.3, condition 4) over raw pairs.
pub fn validate_frontier(pairs: &[LdEa]) -> Result<(), InvariantViolation> {
    for (i, w) in pairs.windows(2).enumerate() {
        if !(w[0].ld < w[1].ld && w[0].ea < w[1].ea) {
            return Err(InvariantViolation::FrontierOrder { index: i + 1 });
        }
    }
    Ok(())
}

/// Runs a §3/§4 structural-invariant check in checking builds (see
/// [`STRICT`]); compiled to nothing otherwise. Panics with the violation when the check fails —
/// invariants describe programmer errors, not recoverable conditions.
#[inline]
pub fn enforce<F>(check: F)
where
    F: FnOnce() -> Result<(), InvariantViolation>,
{
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    if let Err(violation) = check() {
        invariant_failure(&violation);
    }
    #[cfg(not(any(debug_assertions, feature = "strict-invariants")))]
    let _ = check;
}

/// The one deliberate abort in this crate: `enforce`'s documented contract
/// is to fail loudly on a violated invariant (a programmer error, not a
/// recoverable condition), so this raises an unwind whose payload carries
/// the violation description.
#[cfg(any(debug_assertions, feature = "strict-invariants"))]
#[cold]
#[inline(never)]
fn invariant_failure(violation: &InvariantViolation) -> ! {
    std::panic::panic_any(format!("structural invariant violated: {violation}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn c(u: u32, v: u32, s: f64, e: f64) -> Contact {
        Contact::secs(u, v, s, e)
    }

    #[test]
    fn sorted_canonical_contacts_pass() {
        let contacts = [c(0, 1, 0.0, 10.0), c(1, 2, 5.0, 20.0)];
        assert_eq!(
            validate_trace_parts(3, 3, Interval::secs(0.0, 30.0), &contacts),
            Ok(())
        );
    }

    #[test]
    fn unsorted_contacts_are_caught() {
        let contacts = [c(1, 2, 5.0, 20.0), c(0, 1, 0.0, 10.0)];
        assert_eq!(
            validate_trace_parts(3, 3, Interval::secs(0.0, 30.0), &contacts),
            Err(InvariantViolation::UnsortedContacts { index: 1 })
        );
    }

    #[test]
    fn window_and_universe_violations_are_caught() {
        let contacts = [c(0, 1, 0.0, 10.0)];
        assert_eq!(
            validate_trace_parts(3, 3, Interval::secs(2.0, 30.0), &contacts),
            Err(InvariantViolation::ContactOutsideWindow { index: 0 })
        );
        assert_eq!(
            validate_trace_parts(1, 1, Interval::secs(0.0, 30.0), &contacts),
            Err(InvariantViolation::EndpointOutsideUniverse { index: 0 })
        );
        assert_eq!(
            validate_trace_parts(3, 4, Interval::secs(0.0, 30.0), &contacts),
            Err(InvariantViolation::InternalExceedsUniverse)
        );
    }

    #[test]
    fn sequence_chronology_violation_is_caught() {
        // Second contact ends (4.0) before the first begins (6.0): Eq. 2 fails.
        let hops = [c(0, 1, 6.0, 10.0), c(1, 2, 2.0, 4.0)];
        assert_eq!(
            validate_sequence_parts(NodeId(0), &hops),
            Err(InvariantViolation::BrokenChronology { hop: 1 })
        );
    }

    #[test]
    fn sequence_detached_hop_is_caught() {
        let hops = [c(0, 1, 0.0, 10.0), c(2, 3, 5.0, 20.0)];
        assert_eq!(
            validate_sequence_parts(NodeId(0), &hops),
            Err(InvariantViolation::DetachedHop { hop: 1 })
        );
    }

    #[test]
    fn valid_sequence_returns_node_chain() {
        let hops = [c(0, 1, 0.0, 10.0), c(1, 2, 5.0, 20.0)];
        assert_eq!(
            validate_sequence_parts(NodeId(0), &hops),
            Ok(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn frontier_strictness_is_caught() {
        let p = |ld: f64, ea: f64| LdEa {
            ld: Time::secs(ld),
            ea: Time::secs(ea),
        };
        assert_eq!(validate_frontier(&[p(1.0, 0.5), p(2.0, 1.5)]), Ok(()));
        // Equal LD: not strictly increasing.
        assert_eq!(
            validate_frontier(&[p(1.0, 0.5), p(1.0, 1.5)]),
            Err(InvariantViolation::FrontierOrder { index: 1 })
        );
        // EA decreasing.
        assert_eq!(
            validate_frontier(&[p(1.0, 0.5), p(2.0, 0.4)]),
            Err(InvariantViolation::FrontierOrder { index: 1 })
        );
    }

    #[test]
    fn violations_display_their_location() {
        let v = InvariantViolation::UnsortedContacts { index: 7 };
        assert!(v.to_string().contains('7'));
        let v = InvariantViolation::BrokenChronology { hop: 3 };
        assert!(v.to_string().contains("Eq. 2"));
    }
}
