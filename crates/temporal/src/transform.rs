//! Trace surgery: the contact-removal methodology of §6 plus general
//! cropping/filtering used throughout the experiments.
//!
//! Each transform consumes a trace and returns a new one over the *same*
//! node universe and observation window, so success probabilities stay
//! comparable before and after (exactly how the paper compares Figures
//! 10–12 against the original data set).

use crate::contact::{Contact, ContactId, Interval};
use crate::node::NodeId;
use crate::time::{Dur, Time};
use crate::trace::Trace;
use rand::Rng;

/// Removes each contact independently with probability `p` (§6.1, Fig. 10).
pub fn remove_random<R: Rng>(trace: &Trace, p: f64, rng: &mut R) -> Trace {
    remove_ids(trace, &remove_random_draw(trace, p, rng))
}

/// The random draw of [`remove_random`], reported as the removed contact
/// ids instead of applied (§6.1) — delta consumers (the incremental
/// profile engine) feed the ids to a removal delta while batch consumers
/// apply them with [`remove_ids`]. Consumes exactly the same RNG stream as
/// `remove_random`, so for any `(trace, p, seed)` the two agree on the
/// kept set.
pub fn remove_random_draw<R: Rng>(trace: &Trace, p: f64, rng: &mut R) -> Vec<ContactId> {
    assert!((0.0..=1.0).contains(&p), "removal probability out of range");
    (0..trace.num_contacts())
        .filter(|_| rng.gen::<f64>() < p)
        .map(|i| ContactId(i as u32))
        .collect()
}

/// Removes the listed contacts (§6.1) — the deterministic half of
/// [`remove_random`]. Ids out of range or duplicated are ignored.
pub fn remove_ids(trace: &Trace, ids: &[ContactId]) -> Trace {
    let mut drop = vec![false; trace.num_contacts()];
    for id in ids {
        if let Some(d) = drop.get_mut(id.0 as usize) {
            *d = true;
        }
    }
    let kept = trace
        .contacts()
        .iter()
        .enumerate()
        .filter(|&(i, _)| !drop[i])
        .map(|(_, c)| *c)
        .collect();
    trace.with_contacts(kept)
}

/// Keeps only contacts lasting at least `min` (§6.2, Fig. 11).
pub fn min_duration(trace: &Trace, min: Dur) -> Trace {
    let kept = trace
        .contacts()
        .iter()
        .filter(|c| c.duration() >= min)
        .copied()
        .collect();
    trace.with_contacts(kept)
}

/// Restricts the trace to `window`: contacts are clipped to the window and
/// dropped when disjoint from it; the trace's observation window becomes
/// `window`. Used to cut "the second day of Infocom06" (§6).
pub fn crop(trace: &Trace, window: Interval) -> Trace {
    let kept: Vec<Contact> = trace
        .contacts()
        .iter()
        .filter_map(|c| {
            c.interval
                .intersect(&window)
                .map(|iv| Contact::new(c.a, c.b, iv))
        })
        .collect();
    crate::trace::TraceBuilder::new()
        .num_nodes(trace.num_nodes())
        .internal(trace.num_internal())
        .window(window)
        .contacts(kept)
        .build()
}

/// Keeps only contacts whose endpoints both satisfy `keep`; the node universe
/// is preserved (excluded nodes simply become isolated). E.g.
/// `internal_only` drops the external-device contacts (§5.1).
pub fn filter_nodes<F: Fn(NodeId) -> bool>(trace: &Trace, keep: F) -> Trace {
    let kept = trace
        .contacts()
        .iter()
        .filter(|c| keep(c.a) && keep(c.b))
        .copied()
        .collect();
    trace.with_contacts(kept)
}

/// Drops every contact touching an external device.
pub fn internal_only(trace: &Trace) -> Trace {
    filter_nodes(trace, |n| trace.is_internal(n))
}

/// Restricts the trace to the internal universe entirely: external contacts
/// are dropped *and* the node universe shrinks to `0..num_internal` (ids are
/// already dense, so no renumbering is needed). Use this when per-node
/// aggregates (component fractions, degree distributions) should not count
/// the external population.
pub fn internal_universe(trace: &Trace) -> Trace {
    let kept: Vec<Contact> = trace
        .contacts()
        .iter()
        .filter(|c| trace.is_internal(c.a) && trace.is_internal(c.b))
        .copied()
        .collect();
    crate::trace::TraceBuilder::new()
        .num_nodes(trace.num_internal())
        .internal(trace.num_internal())
        .window(trace.span())
        .contacts(kept)
        .build()
}

/// Quantizes contacts to a scanning granularity `g`: starts round down to a
/// grid multiple, ends round up, mimicking what a periodic Bluetooth scan
/// observes (§5.1). Contacts of zero length become one slot long.
pub fn quantize(trace: &Trace, g: Dur) -> Trace {
    assert!(g > Dur::ZERO, "granularity must be positive");
    let gs = g.as_secs();
    let span = trace.span();
    let quantized = trace
        .contacts()
        .iter()
        .map(|c| {
            let s = (c.start().as_secs() / gs).floor() * gs;
            let mut e = (c.end().as_secs() / gs).ceil() * gs;
            if e <= s {
                e = s + gs;
            }
            // stay inside the observation window
            let s = s.max(span.start.as_secs());
            let e = e.min(span.end.as_secs()).max(s);
            Contact::new(c.a, c.b, Interval::secs(s, e))
        })
        .collect();
    trace.with_contacts(quantized)
}

/// Shifts all timestamps so the window starts at zero (convenience for
/// presenting relative trace time).
pub fn rebase(trace: &Trace) -> Trace {
    let offset = trace.span().start.since(Time::ZERO);
    let moved: Vec<Contact> = trace
        .contacts()
        .iter()
        .map(|c| {
            Contact::new(
                c.a,
                c.b,
                Interval::new(c.start() - offset, c.end() - offset),
            )
        })
        .collect();
    let window = Interval::new(trace.span().start - offset, trace.span().end - offset);
    crate::trace::TraceBuilder::new()
        .num_nodes(trace.num_nodes())
        .internal(trace.num_internal())
        .window(window)
        .contacts(moved)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Trace {
        TraceBuilder::new()
            .num_nodes(4)
            .internal(3)
            .window(Interval::secs(0.0, 1000.0))
            .contact_secs(0, 1, 0.0, 120.0)
            .contact_secs(1, 2, 100.0, 160.0)
            .contact_secs(0, 2, 400.0, 1000.0)
            .contact_secs(0, 3, 500.0, 520.0)
            .build()
    }

    #[test]
    fn remove_random_extremes() {
        let t = toy();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(remove_random(&t, 0.0, &mut rng).num_contacts(), 4);
        assert_eq!(remove_random(&t, 1.0, &mut rng).num_contacts(), 0);
    }

    #[test]
    fn remove_random_is_unbiased_ish() {
        let t = toy();
        let mut rng = StdRng::seed_from_u64(42);
        let mut kept = 0usize;
        for _ in 0..1000 {
            kept += remove_random(&t, 0.5, &mut rng).num_contacts();
        }
        let mean = kept as f64 / 1000.0;
        assert!((mean - 2.0).abs() < 0.2, "mean kept = {mean}");
    }

    #[test]
    fn remove_random_preserves_universe_and_window() {
        let t = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let r = remove_random(&t, 0.9, &mut rng);
        assert_eq!(r.num_nodes(), 4);
        assert_eq!(r.num_internal(), 3);
        assert_eq!(r.span(), t.span());
    }

    #[test]
    fn remove_random_split_agrees_with_combined() {
        let t = toy();
        for seed in 0..32u64 {
            for p in [0.0, 0.3, 0.7, 1.0] {
                let mut rng = StdRng::seed_from_u64(seed);
                let combined = remove_random(&t, p, &mut rng);
                let mut rng = StdRng::seed_from_u64(seed);
                let drawn = remove_random_draw(&t, p, &mut rng);
                assert_eq!(remove_ids(&t, &drawn).contacts(), combined.contacts());
            }
        }
    }

    #[test]
    fn remove_ids_ignores_junk() {
        let t = toy();
        let r = remove_ids(&t, &[ContactId(1), ContactId(1), ContactId(99)]);
        assert_eq!(r.num_contacts(), 3);
    }

    #[test]
    fn min_duration_threshold() {
        let t = toy();
        let r = min_duration(&t, Dur::mins(2.0));
        assert_eq!(r.num_contacts(), 2); // the 120s and 600s contacts
        let r = min_duration(&t, Dur::mins(5.0));
        assert_eq!(r.num_contacts(), 1);
        let r = min_duration(&t, Dur::mins(20.0));
        assert_eq!(r.num_contacts(), 0);
    }

    #[test]
    fn crop_clips_and_drops() {
        let t = toy();
        let r = crop(&t, Interval::secs(110.0, 450.0));
        assert_eq!(r.span(), Interval::secs(110.0, 450.0));
        // 0-1 clipped to [110,120], 1-2 clipped to [110,160], 0-2 to [400,450], 0-3 dropped
        assert_eq!(r.num_contacts(), 3);
        assert!(r
            .contacts()
            .iter()
            .all(|c| c.start() >= Time::secs(110.0) && c.end() <= Time::secs(450.0)));
    }

    #[test]
    fn internal_only_drops_external_contacts() {
        let t = toy();
        let r = internal_only(&t);
        assert_eq!(r.num_contacts(), 3);
        assert!(r.contacts().iter().all(|c| c.b.0 < 3));
        assert_eq!(r.num_nodes(), 4); // universe unchanged
    }

    #[test]
    fn internal_universe_shrinks_node_set() {
        let t = toy();
        let r = internal_universe(&t);
        assert_eq!(r.num_nodes(), 3);
        assert_eq!(r.num_internal(), 3);
        assert_eq!(r.num_contacts(), 3);
        assert_eq!(r.span(), t.span());
    }

    #[test]
    fn quantize_rounds_outward() {
        let t = TraceBuilder::new()
            .window(Interval::secs(0.0, 1000.0))
            .contact_secs(0, 1, 130.0, 250.0)
            .contact_secs(0, 1, 700.0, 700.0)
            .build();
        let q = quantize(&t, Dur::mins(2.0));
        let c0 = q.contacts()[0];
        assert_eq!(c0.start(), Time::secs(120.0));
        assert_eq!(c0.end(), Time::secs(360.0));
        let c1 = q.contacts()[1];
        assert_eq!(c1.duration(), Dur::mins(2.0)); // zero-length became one slot
    }

    #[test]
    fn rebase_shifts_to_zero() {
        let t = TraceBuilder::new()
            .window(Interval::secs(1000.0, 2000.0))
            .contact_secs(0, 1, 1100.0, 1200.0)
            .build();
        let r = rebase(&t);
        assert_eq!(r.span(), Interval::secs(0.0, 1000.0));
        assert_eq!(r.contacts()[0].interval, Interval::secs(100.0, 200.0));
    }
}
