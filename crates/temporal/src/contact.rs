//! Interval contacts.
//!
//! A contact is an edge of the temporal graph labelled with the time interval
//! `[start, end]` during which the two devices could exchange data (§4.2).
//! Contacts are stored undirected — the radio link is symmetric for the whole
//! overlap — and expanded into the two directed arcs by the path algorithms.

use crate::node::NodeId;
use crate::time::{Dur, Time};

/// A closed, finite time interval `[start, end]` with `start <= end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// Beginning of the interval.
    pub start: Time,
    /// End of the interval (inclusive).
    pub end: Time,
}

impl Interval {
    /// Creates an interval; panics unless `start <= end` and both finite.
    pub fn new(start: Time, end: Time) -> Interval {
        assert!(
            start.is_finite() && end.is_finite(),
            "interval must be finite"
        );
        assert!(start <= end, "interval start must not exceed its end");
        Interval { start, end }
    }

    /// Shorthand from raw seconds.
    pub fn secs(start: f64, end: f64) -> Interval {
        Interval::new(Time::secs(start), Time::secs(end))
    }

    /// Length of the interval.
    pub fn duration(&self) -> Dur {
        self.end.since(self.start)
    }

    /// True when `t` lies inside the interval (inclusive).
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// True when the two intervals share at least one instant.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The union of two overlapping (or touching) intervals; `None` when
    /// disjoint.
    pub fn merge(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }

    /// The intersection of two intervals; `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval {
                start: self.start.max(other.start),
                end: self.end.min(other.end),
            })
        } else {
            None
        }
    }
}

/// An undirected contact between two distinct devices over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Contact {
    /// One endpoint (the smaller id after canonicalization).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// When the devices were in range.
    pub interval: Interval,
}

/// Index of a contact inside its trace's contact vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContactId(pub u32);

impl Contact {
    /// Creates a contact, canonicalizing the endpoint order to `a < b`.
    /// Panics on a self-contact.
    pub fn new(u: NodeId, v: NodeId, interval: Interval) -> Contact {
        assert!(u != v, "self-contacts are not allowed");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        Contact { a, b, interval }
    }

    /// Shorthand from raw indices and seconds.
    pub fn secs(u: u32, v: u32, start: f64, end: f64) -> Contact {
        Contact::new(NodeId(u), NodeId(v), Interval::secs(start, end))
    }

    /// Start of the contact.
    pub fn start(&self) -> Time {
        self.interval.start
    }

    /// End of the contact.
    pub fn end(&self) -> Time {
        self.interval.end
    }

    /// Contact duration.
    pub fn duration(&self) -> Dur {
        self.interval.duration()
    }

    /// True when `n` is one of the endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }

    /// The endpoint that is not `n`, or `None` if `n` is not an endpoint.
    pub fn checked_peer_of(&self, n: NodeId) -> Option<NodeId> {
        if self.a == n {
            Some(self.b)
        } else if self.b == n {
            Some(self.a)
        } else {
            None
        }
    }

    /// The endpoint that is not `n`.
    ///
    /// Calling this with a non-endpoint is a programmer error, caught by
    /// debug assertions (and the strict-invariants sequence checks); release
    /// builds return `a` rather than abort mid-computation. Use
    /// [`Contact::checked_peer_of`] when the membership of `n` is not
    /// already established.
    pub fn peer_of(&self, n: NodeId) -> NodeId {
        debug_assert!(self.touches(n), "{n:?} is not an endpoint of {self:?}");
        if self.b == n {
            self.a
        } else {
            self.b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let i = Interval::secs(10.0, 30.0);
        assert_eq!(i.duration(), Dur::secs(20.0));
        assert!(i.contains(Time::secs(10.0)));
        assert!(i.contains(Time::secs(30.0)));
        assert!(!i.contains(Time::secs(30.1)));
    }

    #[test]
    fn interval_overlap_and_merge() {
        let a = Interval::secs(0.0, 10.0);
        let b = Interval::secs(10.0, 20.0);
        let c = Interval::secs(21.0, 25.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.merge(&b), Some(Interval::secs(0.0, 20.0)));
        assert_eq!(a.merge(&c), None);
        assert_eq!(a.intersect(&b), Some(Interval::secs(10.0, 10.0)));
        assert_eq!(b.intersect(&c), None);
    }

    #[test]
    #[should_panic(expected = "start must not exceed")]
    fn inverted_interval_rejected() {
        let _ = Interval::secs(5.0, 1.0);
    }

    #[test]
    fn contact_canonicalizes_endpoints() {
        let c = Contact::secs(9, 2, 0.0, 5.0);
        assert_eq!(c.a, NodeId(2));
        assert_eq!(c.b, NodeId(9));
        assert_eq!(c.peer_of(NodeId(2)), NodeId(9));
        assert_eq!(c.peer_of(NodeId(9)), NodeId(2));
        assert!(c.touches(NodeId(9)));
        assert!(!c.touches(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "self-contacts")]
    fn self_contact_rejected() {
        let _ = Contact::secs(4, 4, 0.0, 1.0);
    }

    #[test]
    #[cfg(debug_assertions)] // peer_of misuse is a debug assertion
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_stranger_panics() {
        let c = Contact::secs(0, 1, 0.0, 1.0);
        let _ = c.peer_of(NodeId(5));
    }

    #[test]
    fn checked_peer_of_reports_membership() {
        let c = Contact::secs(0, 1, 0.0, 1.0);
        assert_eq!(c.checked_peer_of(NodeId(0)), Some(NodeId(1)));
        assert_eq!(c.checked_peer_of(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.checked_peer_of(NodeId(5)), None);
    }
}
