//! Contact traces: a temporal network as recorded by an experiment.
//!
//! A [`Trace`] is the immutable, canonical form of a data set: a dense node
//! universe, an observation window, a start-sorted vector of undirected
//! interval contacts, and an optional internal/external split mirroring the
//! Haggle experiments (§5.1) — external devices are opportunistically seen
//! strangers whose mutual contacts were never recorded.

use crate::contact::{Contact, ContactId, Interval};
use crate::invariant::{self, InvariantViolation};
use crate::node::NodeId;
use crate::time::Time;

/// An immutable contact trace: the §2–§3 contact process as data.
#[derive(Debug, Clone)]
pub struct Trace {
    num_nodes: u32,
    /// Sorted by `(start, end, a, b)`.
    contacts: Vec<Contact>,
    /// Observation window (covers every contact).
    span: Interval,
    /// Nodes with id `>= internal` are external devices; `internal ==
    /// num_nodes` when every device is internal.
    internal: u32,
}

impl Trace {
    /// Builds a trace from parts. Most callers use [`TraceBuilder`].
    fn from_parts(
        num_nodes: u32,
        mut contacts: Vec<Contact>,
        span: Interval,
        internal: u32,
    ) -> Trace {
        contacts.sort_by_key(|x| (x.start(), x.end(), x.a, x.b));
        for c in &contacts {
            assert!(c.b.0 < num_nodes, "contact endpoint outside node universe");
            assert!(
                span.start <= c.start() && c.end() <= span.end,
                "contact outside the observation window"
            );
        }
        assert!(internal <= num_nodes);
        let trace = Trace {
            num_nodes,
            contacts,
            span,
            internal,
        };
        invariant::enforce(|| trace.validate());
        trace
    }

    /// Re-checks every structural invariant of the canonical form: sorted,
    /// canonically ordered, in-window, in-universe contacts (§5.1).
    ///
    /// Traces built through [`TraceBuilder`] hold these by construction;
    /// this is the mechanical re-verification run by debug and
    /// `strict-invariants` builds, and by `omnet check` on imported data.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        invariant::validate_trace_parts(self.num_nodes, self.internal, self.span, &self.contacts)
    }

    /// Number of devices (internal + external).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of internal (experimental) devices.
    pub fn num_internal(&self) -> u32 {
        self.internal
    }

    /// Number of external devices.
    pub fn num_external(&self) -> u32 {
        self.num_nodes - self.internal
    }

    /// True when `n` is an internal device.
    pub fn is_internal(&self, n: NodeId) -> bool {
        n.0 < self.internal
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Internal node ids.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.internal).map(NodeId)
    }

    /// The contacts, sorted by start time.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Number of contacts.
    pub fn num_contacts(&self) -> usize {
        self.contacts.len()
    }

    /// Contact by id.
    pub fn contact(&self, id: ContactId) -> &Contact {
        &self.contacts[id.0 as usize]
    }

    /// The observation window.
    pub fn span(&self) -> Interval {
        self.span
    }

    /// All contacts between the unordered pair `{u, v}`, in start order.
    pub fn pair_contacts(&self, u: NodeId, v: NodeId) -> Vec<Contact> {
        self.contacts
            .iter()
            .filter(|c| c.touches(u) && c.touches(v))
            .copied()
            .collect()
    }

    /// Per-node incident contact ids, each list sorted by contact start.
    pub fn adjacency(&self) -> Adjacency {
        let mut per_node: Vec<Vec<ContactId>> = vec![Vec::new(); self.num_nodes as usize];
        for (i, c) in self.contacts.iter().enumerate() {
            per_node[c.a.index()].push(ContactId(i as u32));
            per_node[c.b.index()].push(ContactId(i as u32));
        }
        // contacts are start-sorted, so each per-node list already is.
        Adjacency { per_node }
    }

    /// The static graph of pairs in contact at instant `t`, as an adjacency
    /// list (used for contemporaneous-connectivity analyses, long-contact
    /// case §3.1.3).
    pub fn snapshot(&self, t: Time) -> Vec<Vec<NodeId>> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_nodes as usize];
        for c in &self.contacts {
            if c.start() > t {
                break;
            }
            if c.interval.contains(t) {
                adj[c.a.index()].push(c.b);
                adj[c.b.index()].push(c.a);
            }
        }
        adj
    }

    /// Rebuilds a trace identical to `self` but holding `contacts` (used by
    /// the transforms; keeps the node universe and window).
    pub fn with_contacts(&self, contacts: Vec<Contact>) -> Trace {
        Trace::from_parts(self.num_nodes, contacts, self.span, self.internal)
    }
}

/// Per-node incidence lists over a trace (the access pattern of the
/// §4.4 induction and the Dijkstra baseline).
#[derive(Debug, Clone)]
pub struct Adjacency {
    per_node: Vec<Vec<ContactId>>,
}

impl Adjacency {
    /// Contact ids incident to `n`, sorted by contact start.
    pub fn incident(&self, n: NodeId) -> &[ContactId] {
        &self.per_node[n.index()]
    }
}

/// Incremental construction of a [`Trace`], canonicalizing contacts into
/// the sorted form the §3 trace model assumes.
///
/// ```
/// use omnet_temporal::TraceBuilder;
///
/// let trace = TraceBuilder::new()
///     .contact_secs(0, 1, 0.0, 120.0)
///     .contact_secs(1, 2, 60.0, 180.0)
///     .build();
/// assert_eq!(trace.num_nodes(), 3);
/// assert_eq!(trace.num_contacts(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    contacts: Vec<Contact>,
    num_nodes: Option<u32>,
    window: Option<Interval>,
    internal: Option<u32>,
    merge_overlaps: bool,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        TraceBuilder::new()
    }
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> TraceBuilder {
        TraceBuilder {
            contacts: Vec::new(),
            num_nodes: None,
            window: None,
            internal: None,
            merge_overlaps: false,
        }
    }

    /// Fixes the node universe size (otherwise inferred as `max id + 1`).
    pub fn num_nodes(mut self, n: u32) -> TraceBuilder {
        self.num_nodes = Some(n);
        self
    }

    /// Fixes the observation window (otherwise inferred from the contacts).
    pub fn window(mut self, w: Interval) -> TraceBuilder {
        self.window = Some(w);
        self
    }

    /// Declares that ids `0..n` are internal and the rest external.
    pub fn internal(mut self, n: u32) -> TraceBuilder {
        self.internal = Some(n);
        self
    }

    /// Merge overlapping/touching same-pair contacts into single intervals
    /// during `build` (scanners occasionally log a long sighting as several
    /// abutting rows).
    pub fn merge_overlaps(mut self, yes: bool) -> TraceBuilder {
        self.merge_overlaps = yes;
        self
    }

    /// Adds one contact.
    pub fn contact(mut self, c: Contact) -> TraceBuilder {
        self.contacts.push(c);
        self
    }

    /// Adds one contact by raw ids and seconds.
    pub fn contact_secs(self, u: u32, v: u32, start: f64, end: f64) -> TraceBuilder {
        self.contact(Contact::secs(u, v, start, end))
    }

    /// Adds many contacts.
    pub fn contacts<I: IntoIterator<Item = Contact>>(mut self, it: I) -> TraceBuilder {
        self.contacts.extend(it);
        self
    }

    /// Mutable push, for loop-style callers.
    pub fn push(&mut self, c: Contact) {
        self.contacts.push(c);
    }

    /// Finalizes the trace.
    ///
    /// Panics if a fixed node-universe size or window is violated, or if the
    /// internal split exceeds the universe.
    pub fn build(mut self) -> Trace {
        if self.merge_overlaps {
            self.contacts = merge_same_pair_overlaps(self.contacts);
        }
        let max_id = self.contacts.iter().map(|c| c.b.0).max();
        let num_nodes = match (self.num_nodes, max_id) {
            (Some(n), _) => n,
            (None, Some(m)) => m + 1,
            (None, None) => 0,
        };
        let span = match self.window {
            Some(w) => w,
            None => {
                let lo = self
                    .contacts
                    .iter()
                    .map(|c| c.start())
                    .min()
                    .unwrap_or(Time::ZERO);
                let hi = self
                    .contacts
                    .iter()
                    .map(|c| c.end())
                    .max()
                    .unwrap_or(Time::ZERO);
                Interval::new(lo, hi)
            }
        };
        let internal = self.internal.unwrap_or(num_nodes);
        Trace::from_parts(num_nodes, self.contacts, span, internal)
    }
}

/// Merges overlapping or touching contacts of the same pair.
fn merge_same_pair_overlaps(mut contacts: Vec<Contact>) -> Vec<Contact> {
    contacts.sort_by_key(|x| (x.a, x.b, x.start(), x.end()));
    let mut out: Vec<Contact> = Vec::with_capacity(contacts.len());
    for c in contacts {
        match out.last_mut() {
            Some(last) if last.a == c.a && last.b == c.b => {
                if let Some(merged) = last.interval.merge(&c.interval) {
                    last.interval = merged;
                } else {
                    out.push(c);
                }
            }
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn toy() -> Trace {
        TraceBuilder::new()
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(1, 2, 5.0, 15.0)
            .contact_secs(0, 2, 20.0, 30.0)
            .build()
    }

    #[test]
    fn builder_infers_universe_and_span() {
        let t = toy();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_contacts(), 3);
        assert_eq!(t.span(), Interval::secs(0.0, 30.0));
        assert_eq!(t.num_internal(), 3);
        assert_eq!(t.num_external(), 0);
    }

    #[test]
    fn contacts_sorted_by_start() {
        let t = TraceBuilder::new()
            .contact_secs(0, 1, 50.0, 60.0)
            .contact_secs(0, 2, 0.0, 5.0)
            .contact_secs(1, 2, 20.0, 25.0)
            .build();
        let starts: Vec<f64> = t.contacts().iter().map(|c| c.start().as_secs()).collect();
        assert_eq!(starts, vec![0.0, 20.0, 50.0]);
    }

    #[test]
    fn adjacency_lists() {
        let t = toy();
        let adj = t.adjacency();
        assert_eq!(adj.incident(NodeId(0)).len(), 2);
        assert_eq!(adj.incident(NodeId(1)).len(), 2);
        assert_eq!(adj.incident(NodeId(2)).len(), 2);
        // incident lists are start-sorted
        let n1 = adj.incident(NodeId(1));
        assert!(t.contact(n1[0]).start() <= t.contact(n1[1]).start());
    }

    #[test]
    fn snapshot_at_instant() {
        let t = toy();
        let snap = t.snapshot(Time::secs(7.0));
        assert_eq!(snap[0], vec![NodeId(1)]);
        assert_eq!(snap[1], vec![NodeId(0), NodeId(2)]);
        let snap2 = t.snapshot(Time::secs(17.0));
        assert!(snap2.iter().all(|l| l.is_empty()));
    }

    #[test]
    fn pair_contacts_filters() {
        let t = toy();
        let pc = t.pair_contacts(NodeId(2), NodeId(0));
        assert_eq!(pc.len(), 1);
        assert_eq!(pc[0].interval, Interval::secs(20.0, 30.0));
    }

    #[test]
    fn internal_external_split() {
        let t = TraceBuilder::new()
            .num_nodes(5)
            .internal(3)
            .contact_secs(0, 4, 0.0, 1.0)
            .build();
        assert_eq!(t.num_internal(), 3);
        assert_eq!(t.num_external(), 2);
        assert!(t.is_internal(NodeId(2)));
        assert!(!t.is_internal(NodeId(3)));
        assert_eq!(t.internal_nodes().count(), 3);
    }

    #[test]
    fn merge_overlaps_combines_abutting_rows() {
        let t = TraceBuilder::new()
            .merge_overlaps(true)
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(0, 1, 10.0, 20.0)
            .contact_secs(0, 1, 30.0, 40.0)
            .contact_secs(1, 2, 5.0, 6.0)
            .build();
        assert_eq!(t.num_contacts(), 3);
        let pc = t.pair_contacts(NodeId(0), NodeId(1));
        assert_eq!(pc.len(), 2);
        assert_eq!(pc[0].duration(), Dur::secs(20.0));
    }

    #[test]
    fn empty_trace() {
        let t = TraceBuilder::new().build();
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_contacts(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the observation window")]
    fn window_violation_rejected() {
        let _ = TraceBuilder::new()
            .window(Interval::secs(0.0, 5.0))
            .contact_secs(0, 1, 2.0, 9.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn universe_violation_rejected() {
        let _ = TraceBuilder::new()
            .num_nodes(2)
            .contact_secs(0, 5, 0.0, 1.0)
            .build();
    }

    #[test]
    fn with_contacts_keeps_metadata() {
        let t = TraceBuilder::new()
            .num_nodes(4)
            .internal(2)
            .window(Interval::secs(0.0, 100.0))
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(2, 3, 20.0, 30.0)
            .build();
        let t2 = t.with_contacts(vec![Contact::secs(0, 3, 1.0, 2.0)]);
        assert_eq!(t2.num_nodes(), 4);
        assert_eq!(t2.num_internal(), 2);
        assert_eq!(t2.span(), Interval::secs(0.0, 100.0));
        assert_eq!(t2.num_contacts(), 1);
    }
}
