//! Plain-text trace serialization.
//!
//! The on-disk format is the one commonly used for Haggle-style contact
//! traces: a few `# key value` header lines followed by one contact per
//! line, `<node_a> <node_b> <start_secs> <end_secs>`, whitespace separated.
//!
//! ```text
//! # nodes 41
//! # internal 41
//! # window 0 259200
//! 0 1 120 360
//! 3 17 240 240
//! ```
//!
//! Headers are optional: without them the universe and window are inferred
//! from the contacts, exactly as [`crate::trace::TraceBuilder`] would.

use crate::contact::{Contact, Interval};
use crate::trace::{Trace, TraceBuilder};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// Unified error type for every trace I/O entry point (§2 dataset import).
///
/// Reading, writing and parsing all report through this one enum so callers
/// handle a single error surface; the file-level operations ([`load`],
/// [`save`]) attach the offending path.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure on a reader or writer.
    Io(std::io::Error),
    /// I/O failure on a named file.
    File {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// A malformed line, with its 1-based line number and explanation.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

/// Legacy alias for [`IoError`] (§2); the parsing entry points predate the
/// unified error type.
pub type ParseError = IoError;

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::File { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            IoError::Syntax { line, message } => {
                write!(f, "trace syntax error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::File { source, .. } => Some(source),
            IoError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serializes a trace in the plain-text format (§2 dataset interchange).
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# nodes {}", trace.num_nodes());
    let _ = writeln!(out, "# internal {}", trace.num_internal());
    let _ = writeln!(
        out,
        "# window {} {}",
        trace.span().start.as_secs(),
        trace.span().end.as_secs()
    );
    for c in trace.contacts() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            c.a,
            c.b,
            c.start().as_secs(),
            c.end().as_secs()
        );
    }
    out
}

/// Parses a trace from a reader (§2 contact-trace format).
pub fn from_reader<R: Read>(reader: R) -> Result<Trace, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = TraceBuilder::new();
    let mut window: Option<Interval> = None;
    let mut nodes: Option<u32> = None;
    let mut internal: Option<u32> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            match it.next() {
                Some("nodes") => {
                    nodes = Some(parse_field(it.next(), lineno, "node count")?);
                }
                Some("internal") => {
                    internal = Some(parse_field(it.next(), lineno, "internal count")?);
                }
                Some("window") => {
                    let lo: f64 = parse_field(it.next(), lineno, "window start")?;
                    let hi: f64 = parse_field(it.next(), lineno, "window end")?;
                    if lo > hi {
                        return Err(syntax(lineno, "window start exceeds end"));
                    }
                    window = Some(Interval::secs(lo, hi));
                }
                _ => {} // unknown headers and comments are ignored
            }
            continue;
        }
        let fields: Vec<&str> = text.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(syntax(
                lineno,
                &format!("expected 4 fields, found {}", fields.len()),
            ));
        }
        let a: u32 = parse_field(Some(fields[0]), lineno, "node a")?;
        let b: u32 = parse_field(Some(fields[1]), lineno, "node b")?;
        let s: f64 = parse_field(Some(fields[2]), lineno, "start time")?;
        let e: f64 = parse_field(Some(fields[3]), lineno, "end time")?;
        if a == b {
            return Err(syntax(lineno, "self-contact"));
        }
        if !s.is_finite() || !e.is_finite() || s > e {
            return Err(syntax(lineno, "invalid contact interval"));
        }
        builder.push(Contact::secs(a, b, s, e));
    }
    if let Some(n) = nodes {
        builder = builder.num_nodes(n);
    }
    if let Some(i) = internal {
        builder = builder.internal(i);
    }
    if let Some(w) = window {
        builder = builder.window(w);
    }
    Ok(builder.build())
}

/// Parses a trace from a string (§2 contact-trace format).
pub fn from_str(s: &str) -> Result<Trace, IoError> {
    from_reader(s.as_bytes())
}

/// Writes a trace to a file (§2 dataset interchange).
pub fn save(trace: &Trace, path: &Path) -> Result<(), IoError> {
    std::fs::write(path, to_string(trace)).map_err(|source| IoError::File {
        path: path.to_path_buf(),
        source,
    })
}

/// Reads a trace from a file (§2 dataset import).
pub fn load(path: &Path) -> Result<Trace, IoError> {
    let file = std::fs::File::open(path).map_err(|source| IoError::File {
        path: path.to_path_buf(),
        source,
    })?;
    from_reader(file)
}

/// Lenient import of Haggle/CRAWDAD-style contact listings (§2 datasets).
///
/// Real published traces come as whitespace- or semicolon-separated rows
/// with *arbitrary* (often 1-based or hardware-derived) device identifiers
/// and sometimes trailing columns (`up`, `down`, sighting counters). This
/// parser accepts any row whose first four fields are
/// `<id_a> <id_b> <start> <end>`, remaps identifiers densely in order of
/// first appearance, skips malformed rows (counting them) instead of
/// failing, and merges duplicate/overlapping same-pair rows.
pub fn import_lenient<R: Read>(reader: R) -> Result<LenientImport, IoError> {
    let reader = BufReader::new(reader);
    let mut ids: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let mut builder = TraceBuilder::new().merge_overlaps(true);
    let mut skipped = 0usize;
    let mut accepted = 0usize;
    for line in reader.lines() {
        let line = line.map_err(IoError::Io)?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') || text.starts_with("//") {
            continue;
        }
        let fields: Vec<&str> = text
            .split(|c: char| c.is_whitespace() || c == ';' || c == ',')
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() < 4 {
            skipped += 1;
            continue;
        }
        let (sa, sb) = (fields[0], fields[1]);
        let (Ok(start), Ok(end)) = (fields[2].parse::<f64>(), fields[3].parse::<f64>()) else {
            skipped += 1;
            continue;
        };
        if !start.is_finite() || !end.is_finite() || start > end || sa == sb {
            skipped += 1;
            continue;
        }
        let next = ids.len() as u32;
        let a = *ids.entry(sa.to_string()).or_insert(next);
        let next = ids.len() as u32;
        let b = *ids.entry(sb.to_string()).or_insert(next);
        builder.push(Contact::secs(a, b, start, end));
        accepted += 1;
    }
    Ok(LenientImport {
        trace: builder.build(),
        accepted,
        skipped,
        id_count: ids.len(),
    })
}

/// Result of [`import_lenient`] (§2 dataset import).
#[derive(Debug, Clone)]
pub struct LenientImport {
    /// The imported trace (identifiers densely remapped).
    pub trace: Trace,
    /// Rows that became contacts (before overlap merging).
    pub accepted: usize,
    /// Rows that were skipped as malformed.
    pub skipped: usize,
    /// Number of distinct device identifiers seen.
    pub id_count: usize,
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, IoError> {
    field
        .ok_or_else(|| syntax(line, &format!("missing {what}")))?
        .parse()
        .map_err(|_| syntax(line, &format!("invalid {what}")))
}

fn syntax(line: usize, message: &str) -> IoError {
    IoError::Syntax {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::time::Time;

    #[test]
    fn roundtrip() {
        let t = TraceBuilder::new()
            .num_nodes(5)
            .internal(3)
            .window(Interval::secs(0.0, 500.0))
            .contact_secs(0, 1, 10.0, 20.0)
            .contact_secs(2, 4, 30.0, 400.0)
            .build();
        let text = to_string(&t);
        let back = from_str(&text).unwrap();
        assert_eq!(back.num_nodes(), 5);
        assert_eq!(back.num_internal(), 3);
        assert_eq!(back.span(), Interval::secs(0.0, 500.0));
        assert_eq!(back.contacts(), t.contacts());
    }

    #[test]
    fn headers_optional() {
        let t = from_str("0 1 5 10\n2 1 20 30\n").unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.span(), Interval::secs(5.0, 30.0));
        assert_eq!(t.num_internal(), 3);
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let t = from_str("# a comment header\n\n0 1 0 1\n\n# trailing\n").unwrap();
        assert_eq!(t.num_contacts(), 1);
    }

    #[test]
    fn canonicalizes_endpoint_order() {
        let t = from_str("9 2 0 1\n").unwrap();
        assert_eq!(t.contacts()[0].a, NodeId(2));
        assert_eq!(t.contacts()[0].b, NodeId(9));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = from_str("0 1 0 1\nbogus line\n").unwrap_err();
        match err {
            IoError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
        let err = from_str("0 0 0 1\n").unwrap_err();
        assert!(err.to_string().contains("self-contact"));
        let err = from_str("0 1 5 1\n").unwrap_err();
        assert!(err.to_string().contains("invalid contact interval"));
        let err = from_str("0 1 abc 1\n").unwrap_err();
        assert!(err.to_string().contains("start time"));
    }

    #[test]
    fn file_roundtrip() {
        let t = TraceBuilder::new().contact_secs(0, 1, 0.0, 9.0).build();
        let dir = std::env::temp_dir().join("omnet-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.trace");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.contacts(), t.contacts());
        assert_eq!(back.contacts()[0].end(), Time::secs(9.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lenient_import_remaps_and_skips() {
        let raw = "\
# CRAWDAD-style listing\n\
37 101 100 220 1 0\n\
101 42 150 150\n\
bogus row\n\
37 37 0 10\n\
42;37;300;400;extra\n\
101 42 390 380\n";
        let imp = super::super::io::import_lenient(raw.as_bytes()).unwrap();
        assert_eq!(imp.accepted, 3);
        assert_eq!(imp.skipped, 3); // bogus, self-contact, inverted interval
        assert_eq!(imp.id_count, 3);
        let t = &imp.trace;
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_contacts(), 3);
        // ids remapped in first-appearance order: 37 -> 0, 101 -> 1, 42 -> 2
        assert_eq!(t.contacts()[0].a, NodeId(0));
        assert_eq!(t.contacts()[0].b, NodeId(1));
    }

    #[test]
    fn lenient_import_merges_duplicate_rows() {
        let raw = "a b 0 100\nb a 50 150\na b 200 210\n";
        let imp = super::super::io::import_lenient(raw.as_bytes()).unwrap();
        assert_eq!(imp.accepted, 3);
        assert_eq!(imp.trace.num_contacts(), 2);
        assert_eq!(imp.trace.contacts()[0].interval, Interval::secs(0.0, 150.0));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/omnet.trace")).unwrap_err();
        assert!(matches!(err, IoError::File { .. }));
    }
}
