//! Node identities.
//!
//! Devices in a trace are numbered densely from zero; the distinction between
//! *internal* devices (experiment participants, full contact logs) and
//! *external* devices (opportunistically seen Bluetooth devices whose mutual
//! contacts are invisible, paper §5.1) is carried by the trace metadata, not
//! by the id itself.

use std::fmt;

/// A device identifier, dense in `0..Trace::num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        assert!(
            v <= u32::MAX as usize,
            "node index {v} exceeds the u32 node universe"
        );
        NodeId(v as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let n: NodeId = 7u32.into();
        assert_eq!(n.index(), 7);
        let m: NodeId = 9usize.into();
        assert_eq!(m, NodeId(9));
        assert_eq!(format!("{n}"), "7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(3) < NodeId(10));
    }
}
