//! Contemporaneous connectivity: the static graph the network forms at one
//! instant.
//!
//! §3.2.3 explains the dense long-contact regime (λ > 1) through the giant
//! component of the snapshot graph — "the network is essentially
//! almost-simultaneously connected". These helpers measure that directly on
//! any trace: connected components at an instant and the giant-component
//! fraction over time.

use crate::node::NodeId;
use crate::time::Time;
use crate::trace::Trace;

/// Connected components of the snapshot graph at instant `t`, largest
/// first. Isolated nodes appear as singleton components.
pub fn snapshot_components(trace: &Trace, t: Time) -> Vec<Vec<NodeId>> {
    let n = trace.num_nodes() as usize;
    let adj = trace.snapshot(t);
    let mut seen = vec![false; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        seen[start] = true;
        let mut comp = Vec::new();
        while let Some(u) = stack.pop() {
            comp.push(NodeId(u as u32));
            for v in &adj[u] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Fraction of nodes inside the largest snapshot component at `t`.
pub fn giant_component_fraction(trace: &Trace, t: Time) -> f64 {
    if trace.num_nodes() == 0 {
        return 0.0;
    }
    let comps = snapshot_components(trace, t);
    comps[0].len() as f64 / trace.num_nodes() as f64
}

/// BFS eccentricity structure of the snapshot at `t`: the maximum, over
/// reachable ordered pairs, of the hop distance — i.e. the *static* diameter
/// of the instant graph, which bounds how deep a contemporaneous chain can
/// be (long-contact case).
pub fn snapshot_diameter(trace: &Trace, t: Time) -> usize {
    let n = trace.num_nodes() as usize;
    let adj = trace.snapshot(t);
    let mut best = 0usize;
    for s in 0..n {
        if adj[s].is_empty() {
            continue;
        }
        // BFS from s
        let mut dist = vec![usize::MAX; n];
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in &adj[u] {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u] + 1;
                    queue.push_back(v.index());
                }
            }
        }
        let ecc = dist
            .iter()
            .filter(|d| **d != usize::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Samples the giant-component fraction on `samples` uniform instants —
/// the time series behind "dense by day, disconnected by night".
pub fn giant_component_series(trace: &Trace, samples: usize) -> Vec<(Time, f64)> {
    assert!(samples >= 2, "need at least two sample points");
    let span = trace.span();
    (0..samples)
        .map(|i| {
            let t = Time::secs(
                span.start.as_secs() + span.duration().as_secs() * i as f64 / (samples - 1) as f64,
            );
            (t, giant_component_fraction(trace, t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn two_triangles() -> Trace {
        // triangle {0,1,2} and edge {3,4} live at t=10; node 5 isolated.
        TraceBuilder::new()
            .num_nodes(6)
            .contact_secs(0, 1, 0.0, 20.0)
            .contact_secs(1, 2, 5.0, 25.0)
            .contact_secs(0, 2, 5.0, 15.0)
            .contact_secs(3, 4, 8.0, 12.0)
            .contact_secs(2, 3, 30.0, 40.0)
            .build()
    }

    #[test]
    fn components_at_instant() {
        let t = two_triangles();
        let comps = snapshot_components(&t, Time::secs(10.0));
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(comps[1], vec![NodeId(3), NodeId(4)]);
        assert_eq!(comps[2], vec![NodeId(5)]);
    }

    #[test]
    fn giant_fraction() {
        let t = two_triangles();
        assert_eq!(giant_component_fraction(&t, Time::secs(10.0)), 0.5);
        // at t=35 only the 2-3 contact lives
        assert!((giant_component_fraction(&t, Time::secs(35.0)) - 2.0 / 6.0).abs() < 1e-12);
        // empty instant: all singletons
        assert!((giant_component_fraction(&t, Time::secs(100.0)) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_diameter_depth() {
        // path 0-1-2-3 at t=5: diameter 3
        let t = TraceBuilder::new()
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(1, 2, 0.0, 10.0)
            .contact_secs(2, 3, 0.0, 10.0)
            .build();
        assert_eq!(snapshot_diameter(&t, Time::secs(5.0)), 3);
        assert_eq!(snapshot_diameter(&t, Time::secs(50.0)), 0);
        // adding the chord 0-3 shrinks it
        let t2 = TraceBuilder::new()
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(1, 2, 0.0, 10.0)
            .contact_secs(2, 3, 0.0, 10.0)
            .contact_secs(0, 3, 0.0, 10.0)
            .build();
        assert_eq!(snapshot_diameter(&t2, Time::secs(5.0)), 2);
    }

    #[test]
    fn series_shape() {
        let t = two_triangles();
        let series = giant_component_series(&t, 9);
        assert_eq!(series.len(), 9);
        assert!(series.iter().all(|(_, f)| (0.0..=1.0).contains(f)));
        // peak occupancy is mid-trace
        let peak = series.iter().map(|(_, f)| *f).fold(0.0f64, f64::max);
        assert_eq!(peak, 0.5);
    }
}
