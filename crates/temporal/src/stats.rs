//! Trace statistics: everything Table 1, Figure 6 and Figure 7 report.
//!
//! *Rate of contact* is stated per node and per hour (average number of
//! contact initiations a device takes part in, per hour of trace): the ACM
//! copy of the paper prints the numeric Table 1 rates illegibly, so the unit
//! is pinned here and recorded in EXPERIMENTS.md alongside the measured
//! values.

use crate::contact::Interval;
use crate::node::NodeId;
use crate::time::{Dur, Time};
use crate::trace::Trace;

/// Aggregate characteristics of a trace (Table 1 row).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Observation window length.
    pub duration: Dur,
    /// Estimated scan granularity (smallest positive contact duration).
    pub granularity: Option<Dur>,
    /// Number of internal (experimental) devices.
    pub internal_devices: u32,
    /// Number of external devices.
    pub external_devices: u32,
    /// Contacts whose endpoints are both internal.
    pub internal_contacts: usize,
    /// Contacts touching at least one external device.
    pub external_contacts: usize,
    /// Average contact initiations per internal device per hour, counting
    /// internal-internal contacts only.
    pub internal_rate_per_node_hour: f64,
    /// Same, counting every contact incident to an internal device.
    pub total_rate_per_node_hour: f64,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    pub fn of(trace: &Trace) -> TraceStats {
        let duration = trace.span().duration();
        let hours = duration.as_hours();
        let mut internal_contacts = 0usize;
        let mut external_contacts = 0usize;
        let mut internal_endpoint_incidences = 0usize; // internal-internal, both sides
        let mut any_endpoint_incidences = 0usize;
        for c in trace.contacts() {
            let ia = trace.is_internal(c.a);
            let ib = trace.is_internal(c.b);
            if ia && ib {
                internal_contacts += 1;
                internal_endpoint_incidences += 2;
                any_endpoint_incidences += 2;
            } else {
                external_contacts += 1;
                any_endpoint_incidences += usize::from(ia) + usize::from(ib);
            }
        }
        let n_int = trace.num_internal().max(1) as f64;
        let per_node_hour = |incidences: usize| {
            if hours > 0.0 {
                incidences as f64 / n_int / hours
            } else {
                0.0
            }
        };
        TraceStats {
            duration,
            granularity: estimate_granularity(trace),
            internal_devices: trace.num_internal(),
            external_devices: trace.num_external(),
            internal_contacts,
            external_contacts,
            internal_rate_per_node_hour: per_node_hour(internal_endpoint_incidences),
            total_rate_per_node_hour: per_node_hour(any_endpoint_incidences),
        }
    }
}

/// Smallest positive contact duration — for scanner-quantized traces this is
/// the scan period (a "single-slot" contact, §5.3).
pub fn estimate_granularity(trace: &Trace) -> Option<Dur> {
    trace
        .contacts()
        .iter()
        .map(|c| c.duration())
        .filter(|d| *d > Dur::ZERO)
        .min()
}

/// All contact durations.
pub fn contact_durations(trace: &Trace) -> Vec<Dur> {
    trace.contacts().iter().map(|c| c.duration()).collect()
}

/// Inter-contact times: for every unordered pair, the gaps between the end of
/// one contact and the start of the pair's next contact (§2's inter-contact
/// time). Pairs that never meet contribute nothing; overlapping same-pair
/// contacts contribute a zero gap.
pub fn inter_contact_times(trace: &Trace) -> Vec<Dur> {
    let mut per_pair: std::collections::HashMap<(NodeId, NodeId), Vec<Interval>> =
        std::collections::HashMap::new();
    for c in trace.contacts() {
        per_pair.entry((c.a, c.b)).or_default().push(c.interval);
    }
    let mut gaps = Vec::new();
    for (_, mut ivs) in per_pair {
        ivs.sort_by_key(|i| (i.start, i.end));
        for w in ivs.windows(2) {
            let gap = w[1].start.since(w[0].end);
            gaps.push(gap.max(Dur::ZERO));
        }
    }
    gaps
}

/// Number of distinct peers each node ever contacts.
pub fn degrees(trace: &Trace) -> Vec<usize> {
    let n = trace.num_nodes() as usize;
    let mut peers: Vec<std::collections::HashSet<NodeId>> = vec![Default::default(); n];
    for c in trace.contacts() {
        peers[c.a.index()].insert(c.b);
        peers[c.b.index()].insert(c.a);
    }
    peers.into_iter().map(|s| s.len()).collect()
}

/// Number of contacts each node takes part in.
pub fn contact_counts(trace: &Trace) -> Vec<usize> {
    let n = trace.num_nodes() as usize;
    let mut counts = vec![0usize; n];
    for c in trace.contacts() {
        counts[c.a.index()] += 1;
        counts[c.b.index()] += 1;
    }
    counts
}

/// Figure 6's quantity: the first time at or after `t` when `node` is in
/// range of *any* other device; `Time::INF` when it never is again.
pub fn next_contact_at(trace: &Trace, node: NodeId, t: Time) -> Time {
    let mut best = Time::INF;
    for c in trace.contacts() {
        if c.start() > best {
            break; // contacts are start-sorted; nothing later can improve
        }
        if !c.touches(node) || c.end() < t {
            continue;
        }
        best = best.min(c.start().max(t));
        if best == t {
            break;
        }
    }
    best
}

/// Samples the Figure 6 step function on `samples` uniform departure times
/// across the trace window, returning `(departure, next-contact arrival)`
/// pairs.
pub fn next_contact_series(trace: &Trace, node: NodeId, samples: usize) -> Vec<(Time, Time)> {
    assert!(samples >= 2, "need at least two sample points");
    let span = trace.span();
    let lo = span.start.as_secs();
    let hi = span.end.as_secs();
    (0..samples)
        .map(|i| {
            let t = Time::secs(lo + (hi - lo) * i as f64 / (samples - 1) as f64);
            (t, next_contact_at(trace, node, t))
        })
        .collect()
}

/// Fraction of a node's window spent in contact with at least one device.
pub fn occupancy(trace: &Trace, node: NodeId) -> f64 {
    let mut ivs: Vec<Interval> = trace
        .contacts()
        .iter()
        .filter(|c| c.touches(node))
        .map(|c| c.interval)
        .collect();
    ivs.sort_by_key(|i| (i.start, i.end));
    let mut covered = Dur::ZERO;
    let mut current: Option<Interval> = None;
    for iv in ivs {
        current = Some(match current {
            None => iv,
            Some(cur) => match cur.merge(&iv) {
                Some(m) => m,
                None => {
                    covered = covered + cur.duration();
                    iv
                }
            },
        });
    }
    if let Some(cur) = current {
        covered = covered + cur.duration();
    }
    let total = trace.span().duration();
    if total > Dur::ZERO {
        covered.as_secs() / total.as_secs()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn toy() -> Trace {
        // 0-1 twice, 1-2 once; window [0, 3600].
        TraceBuilder::new()
            .window(Interval::secs(0.0, 3600.0))
            .contact_secs(0, 1, 0.0, 120.0)
            .contact_secs(0, 1, 600.0, 840.0)
            .contact_secs(1, 2, 1800.0, 2160.0)
            .build()
    }

    #[test]
    fn table1_style_stats() {
        let s = TraceStats::of(&toy());
        assert_eq!(s.duration, Dur::hours(1.0));
        assert_eq!(s.granularity, Some(Dur::mins(2.0)));
        assert_eq!(s.internal_devices, 3);
        assert_eq!(s.external_devices, 0);
        assert_eq!(s.internal_contacts, 3);
        assert_eq!(s.external_contacts, 0);
        // 3 contacts × 2 endpoints / 3 nodes / 1 hour = 2 per node-hour.
        assert!((s.internal_rate_per_node_hour - 2.0).abs() < 1e-12);
        assert_eq!(s.internal_rate_per_node_hour, s.total_rate_per_node_hour);
    }

    #[test]
    fn internal_external_contact_split() {
        let t = TraceBuilder::new()
            .num_nodes(4)
            .internal(2)
            .window(Interval::secs(0.0, 3600.0))
            .contact_secs(0, 1, 0.0, 10.0) // internal-internal
            .contact_secs(0, 2, 0.0, 10.0) // internal-external
            .contact_secs(2, 3, 0.0, 10.0) // external-external
            .build();
        let s = TraceStats::of(&t);
        assert_eq!(s.internal_contacts, 1);
        assert_eq!(s.external_contacts, 2);
        // internal incidences: 2 (c0) ; any incidences: 2 + 1 + 0 = 3.
        assert!((s.internal_rate_per_node_hour - 1.0).abs() < 1e-12);
        assert!((s.total_rate_per_node_hour - 1.5).abs() < 1e-12);
    }

    #[test]
    fn durations_and_granularity() {
        let d = contact_durations(&toy());
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Dur::mins(2.0)));
        assert!(d.contains(&Dur::mins(4.0)));
        assert!(d.contains(&Dur::mins(6.0)));
    }

    #[test]
    fn inter_contact_gaps() {
        let gaps = inter_contact_times(&toy());
        // only pair (0,1) repeats: gap 600 - 120 = 480 s.
        assert_eq!(gaps, vec![Dur::secs(480.0)]);
    }

    #[test]
    fn overlapping_pair_contacts_give_zero_gap() {
        let t = TraceBuilder::new()
            .contact_secs(0, 1, 0.0, 100.0)
            .contact_secs(0, 1, 50.0, 150.0)
            .build();
        assert_eq!(inter_contact_times(&t), vec![Dur::ZERO]);
    }

    #[test]
    fn degrees_and_counts() {
        let t = toy();
        assert_eq!(degrees(&t), vec![1, 2, 1]);
        assert_eq!(contact_counts(&t), vec![2, 3, 1]);
    }

    #[test]
    fn next_contact_semantics() {
        let t = toy();
        // During a contact the next contact is "now".
        assert_eq!(
            next_contact_at(&t, NodeId(0), Time::secs(50.0)),
            Time::secs(50.0)
        );
        // Between contacts: the next start.
        assert_eq!(
            next_contact_at(&t, NodeId(0), Time::secs(200.0)),
            Time::secs(600.0)
        );
        // After the last incident contact: never.
        assert_eq!(next_contact_at(&t, NodeId(0), Time::secs(900.0)), Time::INF);
        // Node 2 waits for its single contact.
        assert_eq!(
            next_contact_at(&t, NodeId(2), Time::secs(0.0)),
            Time::secs(1800.0)
        );
    }

    #[test]
    fn next_contact_series_shape() {
        let t = toy();
        let series = next_contact_series(&t, NodeId(1), 13);
        assert_eq!(series.len(), 13);
        assert_eq!(series[0].0, Time::ZERO);
        assert_eq!(series[12].0, Time::secs(3600.0));
        // arrival is always >= departure
        assert!(series.iter().all(|(d, a)| a >= d));
    }

    #[test]
    fn occupancy_fraction() {
        let t = toy();
        // node 0: [0,120] ∪ [600,840] = 360 s of 3600 s.
        assert!((occupancy(&t, NodeId(0)) - 0.1).abs() < 1e-12);
        // node with no contacts
        let empty = TraceBuilder::new()
            .num_nodes(2)
            .window(Interval::secs(0.0, 100.0))
            .build();
        assert_eq!(occupancy(&empty, NodeId(0)), 0.0);
    }
}
