//! A zoo of deterministic temporal-network patterns.
//!
//! Hand-analyzable traces with known delivery functions and diameters —
//! used across the test suites as ground truth, in examples, and whenever a
//! controlled topology is needed (the temporal analogues of the path /
//! star / ring / clique graphs of static graph theory).

use crate::contact::Interval;
use crate::trace::{Trace, TraceBuilder};

/// A chain `0 – 1 – … – n−1` whose i-th contact is live during
/// `[i·period, i·period + duration]`: the canonical store-and-forward
/// relay line. End-to-end needs `n−1` hops and delivers at
/// `(n−2)·period` for messages created by `duration`.
pub fn relay_line(n: u32, period: f64, duration: f64) -> Trace {
    assert!(n >= 2, "a line needs two nodes");
    assert!(period > 0.0 && duration > 0.0 && duration <= period);
    let mut b = TraceBuilder::new().num_nodes(n);
    for i in 0..(n - 1) {
        let start = i as f64 * period;
        b.push(crate::contact::Contact::secs(
            i,
            i + 1,
            start,
            start + duration,
        ));
    }
    b.build()
}

/// A star: the hub (node 0) meets spoke `i ∈ 1..n` during
/// `[i·gap, i·gap + duration]`, one spoke at a time. Spoke-to-spoke
/// delivery always needs 2 hops through the hub and respects visit order.
pub fn sequential_star(n: u32, gap: f64, duration: f64) -> Trace {
    assert!(n >= 2, "a star needs a hub and a spoke");
    assert!(gap > 0.0 && duration > 0.0 && duration <= gap);
    let mut b = TraceBuilder::new().num_nodes(n);
    for i in 1..n {
        let start = i as f64 * gap;
        b.push(crate::contact::Contact::secs(0, i, start, start + duration));
    }
    b.build()
}

/// A rotating ring: at step `k ∈ 0..steps`, node `k mod n` meets
/// `(k+1) mod n` during `[k·period, k·period + duration]`. A message can
/// ride around the ring indefinitely; hop distance between nodes follows
/// ring distance.
pub fn rotating_ring(n: u32, steps: u32, period: f64, duration: f64) -> Trace {
    assert!(n >= 3, "a ring needs three nodes");
    assert!(period > 0.0 && duration > 0.0 && duration <= period);
    let mut b = TraceBuilder::new().num_nodes(n);
    for k in 0..steps {
        let u = k % n;
        let v = (k + 1) % n;
        let start = k as f64 * period;
        b.push(crate::contact::Contact::secs(u, v, start, start + duration));
    }
    b.build()
}

/// Periodic full meshes ("gatherings"): every pair is in contact during
/// `[k·period, k·period + duration]` for `k ∈ 0..repeats` — the temporal
/// clique, diameter 1 whenever a gathering is live.
pub fn periodic_clique(n: u32, repeats: u32, period: f64, duration: f64) -> Trace {
    assert!(n >= 2 && repeats >= 1);
    assert!(period > 0.0 && duration > 0.0 && duration <= period);
    let mut b = TraceBuilder::new().num_nodes(n).window(Interval::secs(
        0.0,
        (repeats - 1) as f64 * period + duration,
    ));
    for k in 0..repeats {
        let start = k as f64 * period;
        for u in 0..n {
            for v in (u + 1)..n {
                b.push(crate::contact::Contact::secs(u, v, start, start + duration));
            }
        }
    }
    b.build()
}

/// Two cliques of size `half` bridged by a single courier (the last node of
/// the first clique) who alternates sides each period: the minimal
/// community topology. Cross-community delivery must route through the
/// courier, so the diameter is 3 (member → courier wait → member).
pub fn two_communities(half: u32, periods: u32, period: f64) -> Trace {
    assert!(half >= 2 && periods >= 2);
    assert!(period > 0.0);
    let n = 2 * half;
    let courier = half - 1; // member of community A
    let duration = period * 0.4;
    let mut b = TraceBuilder::new().num_nodes(n);
    for k in 0..periods {
        let start = k as f64 * period;
        let end = start + duration;
        // community A fully meets every period (courier present on even k)
        for u in 0..half {
            for v in (u + 1)..half {
                if (u == courier || v == courier) && k % 2 == 1 {
                    continue; // courier is away
                }
                b.push(crate::contact::Contact::secs(u, v, start, end));
            }
        }
        // community B fully meets every period (courier visits on odd k)
        for u in half..n {
            for v in (u + 1)..n {
                b.push(crate::contact::Contact::secs(u, v, start, end));
            }
        }
        if k % 2 == 1 {
            for v in half..n {
                b.push(crate::contact::Contact::secs(courier, v, start, end));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::time::Time;

    #[test]
    fn relay_line_structure() {
        let t = relay_line(5, 100.0, 10.0);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_contacts(), 4);
        // contacts are disjoint in time and sequential
        for w in t.contacts().windows(2) {
            assert!(w[0].end() < w[1].start());
        }
    }

    #[test]
    fn sequential_star_visits_in_order() {
        let t = sequential_star(4, 50.0, 5.0);
        assert_eq!(t.num_contacts(), 3);
        assert!(t.contacts().iter().all(|c| c.a == NodeId(0)));
    }

    #[test]
    fn rotating_ring_wraps() {
        let t = rotating_ring(3, 6, 10.0, 2.0);
        assert_eq!(t.num_contacts(), 6);
        let pairs: Vec<(u32, u32)> = t.contacts().iter().map(|c| (c.a.0, c.b.0)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(0, 2))); // the (2,0) wrap, canonicalized
    }

    #[test]
    fn periodic_clique_counts() {
        let t = periodic_clique(4, 3, 100.0, 10.0);
        assert_eq!(t.num_contacts(), 3 * 6);
        // during a gathering everyone is adjacent
        let snap = t.snapshot(Time::secs(105.0));
        assert!(snap.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn two_communities_bridge_via_courier() {
        let t = two_communities(3, 4, 100.0);
        assert_eq!(t.num_nodes(), 6);
        // no direct contact between a non-courier A member and any B member
        for c in t.contacts() {
            let cross = (c.a.0 < 3) != (c.b.0 < 3);
            if cross {
                assert_eq!(c.a.0, 2, "only the courier crosses: {c:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn degenerate_line_rejected() {
        let _ = relay_line(1, 1.0, 0.5);
    }
}
