//! Temporal-network substrate for the CoNEXT'07 *Diameter of Opportunistic
//! Mobile Networks* reproduction.
//!
//! A temporal network here is a fixed set of devices plus a multiset of
//! undirected *interval contacts* — the representation of §4.2 of the paper,
//! where an edge labelled `[t_beg, t_end]` means two devices could exchange
//! data throughout that interval. The crate provides:
//!
//! * [`Time`]/[`Dur`] — totally ordered instants and durations with `±∞`;
//! * [`Contact`]/[`Trace`] — contacts and immutable start-sorted traces with
//!   an internal/external device split;
//! * [`sequence`] — the contact-sequence algebra: validity (Eq. 2),
//!   last-departure/earliest-arrival summaries and the concatenation rule;
//! * [`invariant`] — typed structural-invariant checkers behind the
//!   workspace-wide `strict-invariants` feature;
//! * [`stats`] — every Table 1 / Figure 6 / Figure 7 metric;
//! * [`transform`] — the §6 contact-removal methodology;
//! * [`io`] — plain-text trace (de)serialization and a lenient
//!   Haggle/CRAWDAD-style importer;
//! * [`connectivity`] — contemporaneous snapshot components (the
//!   "almost-simultaneously connected" analysis of §3.2.3);
//! * [`csr`] — flat compressed-sparse-row tables, the large-N storage
//!   layout behind the engine's arc index;
//! * [`overlay`] — tombstone/append delta overlay over an immutable trace,
//!   the substrate of the incremental profile engine.
//!
//! The delay-optimal path machinery built *on top of* these types lives in
//! `omnet-core`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod connectivity;
pub mod contact;
pub mod csr;
pub mod invariant;
pub mod io;
pub mod node;
pub mod overlay;
pub mod patterns;
pub mod sequence;
pub mod stats;
pub mod time;
pub mod trace;
pub mod transform;

pub use contact::{Contact, ContactId, Interval};
pub use csr::Csr;
pub use invariant::InvariantViolation;
pub use io::IoError;
pub use node::NodeId;
pub use overlay::{ContactKey, TraceOverlay};
pub use sequence::{ContactSeq, LdEa};
pub use time::{Dur, Time};
pub use trace::{Adjacency, Trace, TraceBuilder};
