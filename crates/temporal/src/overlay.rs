//! Delta overlay over an immutable [`Trace`]: tombstones + append tail.
//!
//! The §6 experiments and the incremental §4.4 engine both edit the contact
//! substrate — removal sweeps tombstone contacts, live traces append them —
//! but [`Trace`] is deliberately immutable (every consumer relies on its
//! canonical sorted form). A [`TraceOverlay`] keeps one immutable base
//! trace plus a word-packed tombstone bitset and an append tail, merged
//! into a fresh canonical [`Trace`] on demand and compacted into a new base
//! when the overlay grows stale.
//!
//! Every contact — base or appended — is addressed by a [`ContactKey`] that
//! stays valid across edits and materializations (unlike a
//! [`crate::ContactId`], which is an index into one particular trace's
//! sorted contact vector and is renumbered by any edit). The
//! [`TraceOverlay::materialize`] key column translates between the two
//! worlds.

use crate::contact::{Contact, ContactId};
use crate::trace::Trace;

/// A stable handle to one contact of a [`TraceOverlay`] (§6 removal
/// methodology / incremental engine deltas).
///
/// Keys `0..base_len` are the base trace's [`ContactId`]s; appended
/// contacts get the next keys in append order. A key survives tombstoning
/// (removal) and materialization; [`TraceOverlay::compact`] renumbers keys
/// and reports the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContactKey(pub u32);

impl ContactKey {
    /// The key of a base-trace contact (§6): base keys coincide with the
    /// base trace's contact ids.
    pub fn from_base(id: ContactId) -> ContactKey {
        ContactKey(id.0)
    }
}

/// Tombstone bitset + append tail over an immutable base [`Trace`] — the
/// mutable face of the §6 contact-removal methodology and the substrate of
/// the incremental §4.4 engine.
///
/// Edits are O(1); [`TraceOverlay::materialize`] merges the live contacts
/// back into a canonical [`Trace`] (plus the parallel [`ContactKey`]
/// column) in one stable sort, and [`TraceOverlay::compact`] folds the
/// overlay into a fresh base once tombstones or the tail dominate.
#[derive(Debug, Clone)]
pub struct TraceOverlay {
    base: Trace,
    /// Tombstone bitset over `0..num_keys()` (base contacts then tail).
    dead: Vec<u64>,
    /// Appended contacts, keyed `base_len + i` in append order.
    tail: Vec<Contact>,
    /// Number of set bits in `dead`.
    num_dead: usize,
}

impl TraceOverlay {
    /// Wraps `base` with no edits: every base contact live, empty tail.
    /// The overlay preserves the base's node universe and observation
    /// window (§6 — transformed traces stay comparable to the original).
    pub fn new(base: Trace) -> TraceOverlay {
        let words = base.num_contacts().div_ceil(64);
        TraceOverlay {
            base,
            dead: vec![0; words],
            tail: Vec::new(),
            num_dead: 0,
        }
    }

    /// The immutable base trace (§6): live base contacts are this trace's
    /// contacts minus the tombstoned keys.
    pub fn base(&self) -> &Trace {
        &self.base
    }

    /// Total keys ever issued: base contacts plus appends, dead or alive
    /// (§6). Valid keys are `0..num_keys()`.
    pub fn num_keys(&self) -> usize {
        self.base.num_contacts() + self.tail.len()
    }

    /// Number of live (non-tombstoned) contacts (§6).
    pub fn num_live(&self) -> usize {
        self.num_keys() - self.num_dead
    }

    /// Number of tombstoned contacts (§6.1 — contacts removed so far).
    pub fn num_tombstoned(&self) -> usize {
        self.num_dead
    }

    /// True when `key` is issued and not tombstoned (§6).
    pub fn is_live(&self, key: ContactKey) -> bool {
        let k = key.0 as usize;
        k < self.num_keys() && self.dead[k >> 6] & (1u64 << (k & 63)) == 0
    }

    /// The contact behind `key` (live or tombstoned); `None` when the key
    /// was never issued (§6).
    pub fn get(&self, key: ContactKey) -> Option<Contact> {
        let k = key.0 as usize;
        let base_len = self.base.num_contacts();
        if k < base_len {
            Some(*self.base.contact(ContactId(key.0)))
        } else {
            self.tail.get(k - base_len).copied()
        }
    }

    /// Appends a contact, returning its stable key (§6 / incremental
    /// engine append deltas).
    ///
    /// # Panics
    /// If an endpoint is outside the base's node universe, if the interval
    /// leaves the base's observation window, or if the key space (`u32`)
    /// is exhausted.
    pub fn append(&mut self, c: Contact) -> ContactKey {
        assert!(
            c.b.0 < self.base.num_nodes(),
            "appended contact endpoint outside node universe"
        );
        let span = self.base.span();
        assert!(
            span.start <= c.start() && c.end() <= span.end,
            "appended contact outside the observation window"
        );
        let key = self.num_keys();
        assert!(key < u32::MAX as usize, "contact key space exhausted");
        self.tail.push(c);
        if self.dead.len() * 64 < self.num_keys() {
            self.dead.push(0);
        }
        ContactKey(key as u32)
    }

    /// Tombstones `key` (§6.1 contact removal). Returns `true` when the
    /// contact was live — `false` means it was already tombstoned, and the
    /// overlay is unchanged (removal is idempotent).
    ///
    /// # Panics
    /// If `key` was never issued.
    pub fn remove(&mut self, key: ContactKey) -> bool {
        let k = key.0 as usize;
        assert!(k < self.num_keys(), "contact key {k} was never issued");
        let bit = 1u64 << (k & 63);
        if self.dead[k >> 6] & bit != 0 {
            return false;
        }
        self.dead[k >> 6] |= bit;
        self.num_dead += 1;
        true
    }

    /// Iterates the live contacts with their keys: base contacts in base
    /// order, then the tail in append order (§6).
    pub fn live(&self) -> impl Iterator<Item = (ContactKey, Contact)> + '_ {
        self.base
            .contacts()
            .iter()
            .copied()
            .chain(self.tail.iter().copied())
            .enumerate()
            .filter(move |&(k, _)| self.dead[k >> 6] & (1u64 << (k & 63)) == 0)
            .map(|(k, c)| (ContactKey(k as u32), c))
    }

    /// Merges the live contacts into a canonical [`Trace`] plus the
    /// parallel key column: `keys[i]` is the stable key of contact
    /// `ContactId(i)` of the returned trace (§6 / incremental engine).
    ///
    /// The trace is byte-identical to
    /// `base.with_contacts(live contacts in key order)` — in particular,
    /// a removal-only overlay materializes exactly the trace the §6.1
    /// batch transform ([`crate::transform::remove_random`]) builds for
    /// the same kept set.
    pub fn materialize(&self) -> (Trace, Vec<ContactKey>) {
        let mut tagged: Vec<(Contact, ContactKey)> = self.live().map(|(k, c)| (c, k)).collect();
        // Stable sort by the Trace canonical key: `with_contacts` re-sorts
        // with the same stable key, so the pre-sorted vector passes through
        // unchanged and the key column stays aligned with the contacts.
        tagged.sort_by_key(|&(c, _)| (c.start(), c.end(), c.a, c.b));
        let contacts: Vec<Contact> = tagged.iter().map(|&(c, _)| c).collect();
        let keys: Vec<ContactKey> = tagged.iter().map(|&(_, k)| k).collect();
        (self.base.with_contacts(contacts), keys)
    }

    /// Folds the overlay into a fresh base: the materialized trace becomes
    /// the new base, tombstones and tail reset, and keys are renumbered to
    /// `0..num_live()` (§6).
    ///
    /// Returns the renumbering as the old-key column of the new base:
    /// `old[i]` is the pre-compaction key of new key `i`. Keys tombstoned
    /// before compaction are retired and never reissued by this overlay's
    /// new numbering.
    pub fn compact(&mut self) -> Vec<ContactKey> {
        let (trace, old_keys) = self.materialize();
        *self = TraceOverlay::new(trace);
        old_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Interval;
    use crate::trace::TraceBuilder;
    use crate::transform::remove_random;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy() -> Trace {
        TraceBuilder::new()
            .num_nodes(4)
            .internal(3)
            .window(Interval::secs(0.0, 1000.0))
            .contact_secs(0, 1, 0.0, 120.0)
            .contact_secs(1, 2, 100.0, 160.0)
            .contact_secs(0, 2, 400.0, 1000.0)
            .contact_secs(0, 3, 500.0, 520.0)
            .build()
    }

    #[test]
    fn fresh_overlay_materializes_the_base() {
        let t = toy();
        let ov = TraceOverlay::new(t.clone());
        let (m, keys) = ov.materialize();
        assert_eq!(m.contacts(), t.contacts());
        assert_eq!(m.span(), t.span());
        assert_eq!(m.num_nodes(), t.num_nodes());
        assert_eq!(keys, (0..4).map(ContactKey).collect::<Vec<_>>());
    }

    #[test]
    fn remove_is_idempotent_and_counted() {
        let mut ov = TraceOverlay::new(toy());
        assert!(ov.remove(ContactKey(1)));
        assert!(!ov.remove(ContactKey(1)));
        assert_eq!(ov.num_tombstoned(), 1);
        assert_eq!(ov.num_live(), 3);
        assert!(!ov.is_live(ContactKey(1)));
        assert!(ov.is_live(ContactKey(0)));
        let (m, keys) = ov.materialize();
        assert_eq!(m.num_contacts(), 3);
        assert!(!keys.contains(&ContactKey(1)));
    }

    #[test]
    fn append_issues_stable_keys_and_merges_sorted() {
        let mut ov = TraceOverlay::new(toy());
        let k = ov.append(Contact::secs(2, 3, 50.0, 80.0));
        assert_eq!(k, ContactKey(4));
        assert!(ov.is_live(k));
        assert_eq!(ov.get(k), Some(Contact::secs(2, 3, 50.0, 80.0)));
        let (m, keys) = ov.materialize();
        assert_eq!(m.num_contacts(), 5);
        // The appended contact sorts between start=0 and start=100.
        assert_eq!(m.contacts()[1], Contact::secs(2, 3, 50.0, 80.0));
        assert_eq!(keys[1], k);
        // Key column matches the contacts behind the keys.
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(ov.get(key), Some(m.contacts()[i]));
        }
    }

    #[test]
    fn removal_only_overlay_matches_batch_transform() {
        let t = toy();
        for seed in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let batch = remove_random(&t, 0.5, &mut rng);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ov = TraceOverlay::new(t.clone());
            for i in 0..t.num_contacts() {
                if rng.gen::<f64>() < 0.5 {
                    ov.remove(ContactKey(i as u32));
                }
            }
            let (m, _) = ov.materialize();
            assert_eq!(m.contacts(), batch.contacts());
        }
    }

    #[test]
    fn compact_renumbers_and_reports_old_keys() {
        let mut ov = TraceOverlay::new(toy());
        ov.remove(ContactKey(0));
        let appended = ov.append(Contact::secs(2, 3, 50.0, 80.0));
        let before = ov.materialize();
        let old = ov.compact();
        assert_eq!(ov.num_tombstoned(), 0);
        assert_eq!(ov.num_live(), 4);
        assert_eq!(ov.num_keys(), 4);
        // New base == pre-compaction materialization; old-key column maps
        // each new id to the key it had before.
        assert_eq!(ov.base().contacts(), before.0.contacts());
        assert_eq!(old, before.1);
        assert!(old.contains(&appended));
        let (after, keys) = ov.materialize();
        assert_eq!(after.contacts(), before.0.contacts());
        assert_eq!(keys, (0..4).map(ContactKey).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "outside the observation window")]
    fn append_rejects_out_of_window() {
        let mut ov = TraceOverlay::new(toy());
        ov.append(Contact::secs(0, 1, 900.0, 1100.0));
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn append_rejects_out_of_universe() {
        let mut ov = TraceOverlay::new(toy());
        ov.append(Contact::secs(0, 9, 0.0, 10.0));
    }

    #[test]
    fn tail_tombstones_work() {
        let mut ov = TraceOverlay::new(toy());
        let k = ov.append(Contact::secs(2, 3, 50.0, 80.0));
        assert!(ov.remove(k));
        assert!(!ov.is_live(k));
        let (m, _) = ov.materialize();
        assert_eq!(m.contacts(), toy().contacts());
    }
}
