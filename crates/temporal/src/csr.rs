//! Flat compressed-sparse-row (CSR) tables for per-node arc indexes.
//!
//! The §4.4 induction spends most of its time scanning, for each node that
//! carries a fresh delta, the arcs leaving that node. A `Vec<Vec<_>>`
//! adjacency keeps every row in its own heap allocation; at 10⁵–10⁶ nodes
//! the pointer chase and allocator traffic dominate the scan itself. A
//! [`Csr`] packs all rows into one contiguous entry array with a
//! `row_offsets` table, so looking up a row is two loads and a slice, and
//! walking rows in ascending id walks memory forward.

/// A compressed sparse row table: all rows packed into one contiguous
/// `entries` array, with `row_offsets[r]..row_offsets[r + 1]` delimiting
/// row `r` (§4.4 — the storage layout behind the engine's arc index, where
/// a row holds the arcs leaving one node sorted by interval end).
///
/// Offsets are `u32`: the table holds at most `u32::MAX` entries, which
/// bounds traces at ~2×10⁹ contacts — far above the 10⁶-node target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<T> {
    /// `num_rows + 1` offsets into `entries`, non-decreasing.
    row_offsets: Vec<u32>,
    /// All rows, concatenated in row order.
    entries: Vec<T>,
}

impl<T: Copy> Csr<T> {
    /// Builds the table from `(row, entry)` items in one stable counting
    /// sort: count per-row degrees, prefix-sum them into offsets, then
    /// scatter each item to its row's cursor. Items within a row keep their
    /// input order; use [`Csr::sort_rows_by_key`] for a per-row order.
    ///
    /// Every `row` must be `< num_rows` and the total entry count must fit
    /// in `u32` (asserted).
    pub fn build<I>(num_rows: usize, items: I) -> Csr<T>
    where
        I: IntoIterator<Item = (u32, T)>,
    {
        let flat: Vec<(u32, T)> = items.into_iter().collect();
        assert!(
            flat.len() <= u32::MAX as usize,
            "CSR entry count exceeds u32"
        );
        let mut row_offsets = vec![0u32; num_rows + 1];
        for &(r, _) in &flat {
            assert!((r as usize) < num_rows, "CSR row id out of range");
            row_offsets[r as usize + 1] += 1;
        }
        for i in 1..=num_rows {
            row_offsets[i] += row_offsets[i - 1];
        }
        // Stable scatter: `take[slot]` is the input index that fills `slot`,
        // computed by advancing a per-row cursor — then one gather pass
        // materializes the entries without needing `T: Default`.
        let mut cursor: Vec<u32> = row_offsets[..num_rows].to_vec();
        let mut take: Vec<u32> = vec![0; flat.len()];
        for (i, &(r, _)) in flat.iter().enumerate() {
            let c = &mut cursor[r as usize];
            take[*c as usize] = i as u32;
            *c += 1;
        }
        let entries: Vec<T> = take.iter().map(|&i| flat[i as usize].1).collect();
        Csr {
            row_offsets,
            entries,
        }
    }

    /// Sorts every row's entries by the given key (unstable within a row).
    pub fn sort_rows_by_key<K, F>(&mut self, mut key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        for r in 0..self.num_rows() {
            let range = self.row_range(r);
            self.entries[range].sort_unstable_by_key(&mut key);
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Total number of entries across all rows.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Row `r` as a contiguous slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.entries[self.row_range(r)]
    }

    /// The half-open range of row `r` inside [`Csr::entries`] — the hook for
    /// keeping parallel per-entry columns (e.g. contact ids) alongside a
    /// table whose entries were split out via [`Csr::into_parts`].
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize
    }

    /// The full offsets table (`num_rows + 1` entries, non-decreasing).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// All entries, concatenated in row order.
    pub fn entries(&self) -> &[T] {
        &self.entries
    }

    /// Decomposes into `(row_offsets, entries)` — consumers that want to
    /// re-shape the entry array (split columns, re-type) take ownership and
    /// keep the offsets table as their own row index.
    pub fn into_parts(self) -> (Vec<u32>, Vec<T>) {
        (self.row_offsets, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_groups_rows_and_keeps_input_order() {
        let csr = Csr::build(4, [(2u32, 'a'), (0, 'b'), (2, 'c'), (3, 'd'), (0, 'e')]);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.num_entries(), 5);
        assert_eq!(csr.row(0), &['b', 'e']);
        assert_eq!(csr.row(1), &[] as &[char]);
        assert_eq!(csr.row(2), &['a', 'c']);
        assert_eq!(csr.row(3), &['d']);
        assert_eq!(csr.row_offsets(), &[0, 2, 2, 4, 5]);
    }

    #[test]
    fn empty_table_has_empty_rows() {
        let csr: Csr<u64> = Csr::build(3, []);
        assert_eq!(csr.num_entries(), 0);
        for r in 0..3 {
            assert!(csr.row(r).is_empty());
        }
    }

    #[test]
    fn sort_rows_orders_within_rows_only() {
        let mut csr = Csr::build(2, [(0u32, 9i32), (1, 5), (0, 3), (1, 7), (0, 6)]);
        csr.sort_rows_by_key(|&v| v);
        assert_eq!(csr.row(0), &[3, 6, 9]);
        assert_eq!(csr.row(1), &[5, 7]);
    }

    #[test]
    fn row_ranges_align_with_parallel_columns() {
        let csr = Csr::build(3, [(1u32, 10u8), (0, 20), (1, 30)]);
        let (offsets, entries) = csr.clone().into_parts();
        assert_eq!(offsets, vec![0, 1, 3, 3]);
        assert_eq!(entries, vec![20, 10, 30]);
        assert_eq!(csr.row_range(1), 1..3);
        assert_eq!(&entries[csr.row_range(1)], &[10, 30]);
    }

    #[test]
    fn dense_single_row() {
        let csr = Csr::build(1, (0..100u32).map(|i| (0u32, i)));
        assert_eq!(csr.row(0).len(), 100);
        assert_eq!(csr.row(0)[42], 42);
    }
}
