//! Contact-sequence algebra (paper §4.2).
//!
//! A *sequence of contacts* `e₁ … eₙ` supports a time-respecting path iff
//! there are non-decreasing instants `t₁ ≤ … ≤ tₙ` with `tᵢ ∈ [beg ᵢ, end ᵢ]`
//! — equivalently (Eq. 2) iff every contact ends no earlier than the latest
//! beginning among its predecessors. Every such sequence is summarized by two
//! numbers:
//!
//! * **last departure** `LD = min ᵢ end ᵢ` — the latest time a message may
//!   leave the origin and still traverse the sequence, and
//! * **earliest arrival** `EA = max ᵢ beg ᵢ` — the earliest time it can reach
//!   the final device.
//!
//! Facts (i)–(iv) of the paper about these quantities are implemented and
//! tested here; the Pareto-pruned collections of `(LD, EA)` pairs live in
//! `omnet-core`.

use crate::contact::Contact;
use crate::invariant::{self, InvariantViolation};
use crate::node::NodeId;
use crate::time::Time;

/// The `(LD, EA)` summary of a valid contact sequence (§4.3).
///
/// `LD = +∞, EA = -∞` summarizes the empty sequence (message already at its
/// destination): it can "leave" at any time and has "arrived" at all times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LdEa {
    /// Last departure: latest possible starting time of a path over the
    /// sequence.
    pub ld: Time,
    /// Earliest arrival: earliest possible ending time of a path over the
    /// sequence.
    pub ea: Time,
}

impl LdEa {
    /// Summary of the empty sequence.
    pub const EMPTY: LdEa = LdEa {
        ld: Time::INF,
        ea: Time::NEG_INF,
    };

    /// Summary of a single contact: `LD = end`, `EA = beg`.
    pub fn of_contact(c: &Contact) -> LdEa {
        LdEa {
            ld: c.end(),
            ea: c.start(),
        }
    }

    /// Fact (iv): two valid sequences with matching endpoints concatenate
    /// into a valid sequence iff `EA(left) <= LD(right)`; the compound
    /// summary is `(min LD, max EA)`.
    pub fn concat(self, right: LdEa) -> Option<LdEa> {
        if self.ea <= right.ld {
            Some(LdEa {
                ld: self.ld.min(right.ld),
                ea: self.ea.max(right.ea),
            })
        } else {
            None
        }
    }

    /// Appends one contact on the right (the common step of the §4.4
    /// induction).
    pub fn extend(self, c: &Contact) -> Option<LdEa> {
        self.concat(LdEa::of_contact(c))
    }

    /// Optimal delivery time of a message created at time `t` over this
    /// sequence: `max(t, EA)` when `t <= LD`, `+∞` otherwise (the paper's
    /// `del(t)` for a single sequence).
    pub fn delivery(self, t: Time) -> Time {
        if t <= self.ld {
            t.max(self.ea)
        } else {
            Time::INF
        }
    }

    /// True when `self` delivers at least as well as `other` for every start
    /// time: departs no earlier *and* arrives no later.
    pub fn dominates(self, other: LdEa) -> bool {
        self.ld >= other.ld && self.ea <= other.ea
    }
}

/// A materialized sequence of contacts with endpoint bookkeeping
/// (a path over the trace in the sense of §4.2, Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ContactSeq {
    contacts: Vec<Contact>,
    /// Node order visited: `nodes[0]` is the origin, `nodes[i]` the device
    /// after contact `i`.
    nodes: Vec<NodeId>,
}

impl ContactSeq {
    /// The empty sequence anchored at `origin`.
    pub fn at(origin: NodeId) -> ContactSeq {
        ContactSeq {
            contacts: Vec::new(),
            nodes: vec![origin],
        }
    }

    /// Builds a sequence from an origin and hop contacts; returns `None` if
    /// some contact does not touch the current device, or the chronology
    /// (Eq. 2) fails.
    pub fn build(origin: NodeId, contacts: &[Contact]) -> Option<ContactSeq> {
        let mut seq = ContactSeq::at(origin);
        for c in contacts {
            seq = seq.extended(c)?;
        }
        invariant::enforce(|| seq.validate());
        Some(seq)
    }

    /// Re-checks the sequence invariants from scratch: endpoint chaining,
    /// the recorded node chain, and Eq. (2) chronology.
    ///
    /// Sequences built through [`ContactSeq::extended`] hold these by
    /// construction; this is the mechanical re-verification run by debug
    /// and `strict-invariants` builds.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let nodes = invariant::validate_sequence_parts(self.origin(), &self.contacts)?;
        if self.nodes.len() != nodes.len() {
            return Err(InvariantViolation::InconsistentNodeChain { hop: 0 });
        }
        for (hop, (got, want)) in self.nodes.iter().zip(&nodes).enumerate() {
            if got != want {
                return Err(InvariantViolation::InconsistentNodeChain {
                    hop: hop.saturating_sub(1),
                });
            }
        }
        Ok(())
    }

    /// Appends a contact; `None` when it does not touch the current endpoint
    /// or would break chronology.
    pub fn extended(&self, c: &Contact) -> Option<ContactSeq> {
        let here = self.destination();
        if !c.touches(here) {
            return None;
        }
        self.summary().extend(c)?;
        let mut next = self.clone();
        next.contacts.push(*c);
        next.nodes.push(c.peer_of(here));
        Some(next)
    }

    /// Number of hops (contacts traversed).
    pub fn hops(&self) -> usize {
        self.contacts.len()
    }

    /// The origin device.
    pub fn origin(&self) -> NodeId {
        self.nodes[0]
    }

    /// The final device. (A sequence always has an origin, so — like
    /// [`Self::origin`] — this indexes unconditionally.)
    pub fn destination(&self) -> NodeId {
        self.nodes[self.nodes.len() - 1]
    }

    /// Devices visited, origin first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The hop contacts.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// The `(LD, EA)` summary. `LdEa::EMPTY` for the empty sequence.
    pub fn summary(&self) -> LdEa {
        let mut ld = Time::INF;
        let mut ea = Time::NEG_INF;
        for c in &self.contacts {
            ld = ld.min(c.end());
            ea = ea.max(c.start());
        }
        LdEa { ld, ea }
    }

    /// Validity per Eq. (2): every contact ends no earlier than the latest
    /// beginning among its strict predecessors. (Sequences built through
    /// [`ContactSeq::extended`] are valid by construction; this re-checks
    /// from scratch, e.g. for property tests.)
    pub fn is_valid(&self) -> bool {
        let mut max_beg = Time::NEG_INF;
        for c in &self.contacts {
            if c.end() < max_beg {
                return false;
            }
            max_beg = max_beg.max(c.start());
        }
        true
    }

    /// Concrete non-decreasing hop instants `t₁ ≤ … ≤ tₙ` for a message
    /// created at `t`; `None` when `t > LD` (facts (ii)/(iii)).
    ///
    /// The witness chosen departs as late as possible subject to arriving at
    /// `max(t, EA)`: `tᵢ = max(beg ᵢ, …, beg₁, t) clamped to end ᵢ` — a
    /// simple greedy forward pass.
    pub fn schedule(&self, t: Time) -> Option<Vec<Time>> {
        let s = self.summary();
        if t > s.ld {
            return None;
        }
        let mut times = Vec::with_capacity(self.contacts.len());
        let mut now = t;
        for c in &self.contacts {
            now = now.max(c.start());
            debug_assert!(now <= c.end(), "valid sequence must be schedulable");
            times.push(now);
        }
        Some(times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;

    fn c(u: u32, v: u32, s: f64, e: f64) -> Contact {
        Contact::secs(u, v, s, e)
    }

    #[test]
    fn single_contact_summary() {
        let s = LdEa::of_contact(&c(0, 1, 3.0, 9.0));
        assert_eq!(s.ld, Time::secs(9.0));
        assert_eq!(s.ea, Time::secs(3.0));
    }

    #[test]
    fn concat_rule_fact_iv() {
        // e1 = [0,10], e2 = [5,20]: EA(e1)=0 <= LD(e2)=20 -> valid.
        let s1 = LdEa::of_contact(&c(0, 1, 0.0, 10.0));
        let s2 = LdEa::of_contact(&c(1, 2, 5.0, 20.0));
        let s = s1.concat(s2).unwrap();
        assert_eq!(s.ld, Time::secs(10.0));
        assert_eq!(s.ea, Time::secs(5.0));
        // e3 strictly before e1's EA: invalid in that order.
        let s3 = LdEa::of_contact(&c(2, 3, 0.0, 4.0));
        let mid = LdEa::of_contact(&c(0, 1, 6.0, 10.0));
        assert!(mid.concat(s3).is_none());
    }

    #[test]
    fn concat_is_not_always_possible_counterexample() {
        // The paper notes concatenating two individually valid sequences may
        // fail: left = [8,9] (EA=8), right = [2,3] (LD=3): 8 > 3.
        let left = LdEa::of_contact(&c(0, 1, 8.0, 9.0));
        let right = LdEa::of_contact(&c(1, 2, 2.0, 3.0));
        assert!(left.concat(right).is_none());
    }

    #[test]
    fn empty_is_identity_for_concat() {
        let s = LdEa::of_contact(&c(0, 1, 2.0, 7.0));
        assert_eq!(LdEa::EMPTY.concat(s), Some(s));
        assert_eq!(s.concat(LdEa::EMPTY), Some(s));
    }

    #[test]
    fn delivery_function_of_one_sequence() {
        // LD=5, EA=8 (disconnected-in-time relay path).
        let s = LdEa::of_contact(&c(0, 1, 2.0, 5.0))
            .concat(LdEa::of_contact(&c(1, 2, 8.0, 12.0)))
            .unwrap();
        assert_eq!(s.ld, Time::secs(5.0));
        assert_eq!(s.ea, Time::secs(8.0));
        assert_eq!(s.delivery(Time::secs(0.0)), Time::secs(8.0));
        assert_eq!(s.delivery(Time::secs(5.0)), Time::secs(8.0));
        assert_eq!(s.delivery(Time::secs(5.1)), Time::INF);
    }

    #[test]
    fn contemporaneous_delivery_is_instant() {
        // Overlapping contacts: EA=5 <= LD=10 -> del(t) = t on [5,10].
        let s = LdEa::of_contact(&c(0, 1, 0.0, 10.0))
            .concat(LdEa::of_contact(&c(1, 2, 5.0, 15.0)))
            .unwrap();
        assert_eq!(s.delivery(Time::secs(7.0)), Time::secs(7.0));
        assert_eq!(s.delivery(Time::secs(2.0)), Time::secs(5.0));
    }

    #[test]
    fn dominance() {
        let better = LdEa {
            ld: Time::secs(10.0),
            ea: Time::secs(3.0),
        };
        let worse = LdEa {
            ld: Time::secs(8.0),
            ea: Time::secs(5.0),
        };
        assert!(better.dominates(worse));
        assert!(!worse.dominates(better));
        assert!(better.dominates(better));
    }

    #[test]
    fn seq_build_and_endpoints() {
        let seq = ContactSeq::build(
            NodeId(0),
            &[c(0, 1, 0.0, 10.0), c(1, 2, 5.0, 15.0), c(2, 3, 12.0, 20.0)],
        )
        .unwrap();
        assert_eq!(seq.hops(), 3);
        assert_eq!(seq.origin(), NodeId(0));
        assert_eq!(seq.destination(), NodeId(3));
        assert_eq!(seq.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(seq.is_valid());
    }

    #[test]
    fn seq_rejects_disconnected_hop() {
        assert!(ContactSeq::build(NodeId(0), &[c(0, 1, 0.0, 1.0), c(2, 3, 2.0, 3.0)]).is_none());
    }

    #[test]
    fn seq_rejects_chronology_violation() {
        // Second contact is entirely before the first begins.
        assert!(ContactSeq::build(NodeId(0), &[c(0, 1, 10.0, 12.0), c(1, 2, 0.0, 5.0)]).is_none());
    }

    #[test]
    fn undirected_contacts_walk_both_ways() {
        // Contact stored as (1,2) but walked 2 -> 1.
        let seq = ContactSeq::build(NodeId(2), &[c(1, 2, 0.0, 1.0)]).unwrap();
        assert_eq!(seq.destination(), NodeId(1));
    }

    #[test]
    fn schedule_witness_is_feasible() {
        let seq = ContactSeq::build(
            NodeId(0),
            &[c(0, 1, 2.0, 5.0), c(1, 2, 8.0, 12.0), c(2, 3, 9.0, 30.0)],
        )
        .unwrap();
        let times = seq.schedule(Time::secs(0.0)).unwrap();
        assert_eq!(times.len(), 3);
        // non-decreasing and inside each interval
        for (i, (t, ct)) in times.iter().zip(seq.contacts()).enumerate() {
            assert!(ct.interval.contains(*t), "hop {i} out of interval");
            if i > 0 {
                assert!(times[i - 1] <= *t);
            }
        }
        // departing after LD fails
        assert!(seq.schedule(Time::secs(6.0)).is_none());
    }

    #[test]
    fn summary_matches_definition() {
        let seq = ContactSeq::build(
            NodeId(0),
            &[c(0, 1, 2.0, 50.0), c(1, 2, 8.0, 12.0), c(2, 3, 9.0, 30.0)],
        )
        .unwrap();
        let s = seq.summary();
        assert_eq!(s.ld, Time::secs(12.0)); // min end
        assert_eq!(s.ea, Time::secs(9.0)); // max beg
    }
}
