//! Time points and durations.
//!
//! The paper mixes a discrete-slot model (§3.1.1) with second-granularity
//! trace timestamps (§5) and needs the two sentinel values `+∞` (a delivery
//! that never happens) and `-∞` (the earliest-arrival of the empty contact
//! sequence, "the message is already at the source"). `Time` is therefore a
//! totally ordered `f64` newtype that admits both infinities but rejects NaN
//! at every constructor.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, in seconds. Totally ordered; admits `±∞`, rejects NaN.
/// Underlies the path-time arithmetic of §4.2–§4.3.
#[derive(Clone, Copy)]
pub struct Time(f64);

/// A span of time, in seconds. Totally ordered; admits `+∞`, rejects NaN.
/// The delay unit of the §4.1 diameter metrics.
#[derive(Clone, Copy)]
pub struct Dur(f64);

/// Maps `-0.0` to `+0.0` so that `total_cmp`-based equality, ordering and
/// hashing all agree.
fn normalize(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

impl Time {
    /// The origin of the trace clock.
    pub const ZERO: Time = Time(0.0);
    /// "Never": the arrival time of an unreachable destination.
    pub const INF: Time = Time(f64::INFINITY);
    /// "Always already": the earliest arrival of the empty sequence.
    pub const NEG_INF: Time = Time(f64::NEG_INFINITY);

    /// A time point `s` seconds after the origin. Panics on NaN.
    pub fn secs(s: f64) -> Time {
        assert!(!s.is_nan(), "Time must not be NaN");
        Time(normalize(s))
    }

    /// Seconds since the origin.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// True when finite (neither infinity).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The later of two time points.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Elapsed time from `earlier` to `self`; may be negative.
    ///
    /// Subtraction of equal infinities would be NaN, so it panics instead:
    /// callers compare against `Time::INF` before taking differences.
    pub fn since(self, earlier: Time) -> Dur {
        let d = self.0 - earlier.0;
        assert!(!d.is_nan(), "difference of like infinities is undefined");
        Dur(normalize(d))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0.0);
    /// Unbounded duration (the delay of a never-delivered message).
    pub const INF: Dur = Dur(f64::INFINITY);

    /// `s` seconds. Panics on NaN.
    pub fn secs(s: f64) -> Dur {
        assert!(!s.is_nan(), "Dur must not be NaN");
        Dur(normalize(s))
    }

    /// `m` minutes.
    pub fn mins(m: f64) -> Dur {
        Dur::secs(m * 60.0)
    }

    /// `h` hours.
    pub fn hours(h: f64) -> Dur {
        Dur::secs(h * 3600.0)
    }

    /// `d` days.
    pub fn days(d: f64) -> Dur {
        Dur::secs(d * 86_400.0)
    }

    /// `w` weeks.
    pub fn weeks(w: f64) -> Dur {
        Dur::secs(w * 604_800.0)
    }

    /// Seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Minutes.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Days.
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// True when finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl PartialEq for Time {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for Time {}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl std::hash::Hash for Time {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialEq for Dur {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for Dur {}
impl Ord for Dur {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for Dur {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl std::hash::Hash for Dur {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        let t = self.0 + rhs.0;
        assert!(!t.is_nan(), "Time + Dur produced NaN (∞ + -∞?)");
        Time(normalize(t))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        let t = self.0 - rhs.0;
        assert!(!t.is_nan(), "Time - Dur produced NaN");
        Time(normalize(t))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(normalize(self.0 + rhs.0))
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        let d = self.0 - rhs.0;
        assert!(!d.is_nan(), "Dur - Dur produced NaN");
        Dur(normalize(d))
    }
}

impl std::iter::Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == f64::INFINITY {
            write!(f, "∞")
        } else if self.0 == f64::NEG_INFINITY {
            write!(f, "-∞")
        } else {
            write!(f, "{}", Dur(self.0))
        }
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dur({})", self.0)
    }
}

impl fmt::Display for Dur {
    /// Human scale: `90s` → `1m30s`, `7200s` → `2h`, etc.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s == f64::INFINITY {
            return write!(f, "∞");
        }
        if s < 0.0 {
            return write!(f, "-{}", Dur(-s));
        }
        let total = s.round() as u64;
        if s < 60.0 && (s.fract() != 0.0 || total == 0) {
            return write!(f, "{:.3}s", s);
        }
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, sec) = (rem / 60, rem % 60);
        let mut wrote = false;
        for (v, unit) in [(d, "d"), (h, "h"), (m, "m"), (sec, "s")] {
            if v > 0 {
                write!(f, "{}{}", v, unit)?;
                wrote = true;
            }
        }
        if !wrote {
            write!(f, "0s")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_includes_infinities() {
        assert!(Time::NEG_INF < Time::ZERO);
        assert!(Time::ZERO < Time::secs(1.0));
        assert!(Time::secs(1e12) < Time::INF);
        assert_eq!(Time::INF.max(Time::ZERO), Time::INF);
        assert_eq!(Time::NEG_INF.min(Time::ZERO), Time::NEG_INF);
    }

    #[test]
    fn arithmetic() {
        let t = Time::secs(100.0) + Dur::mins(2.0);
        assert_eq!(t, Time::secs(220.0));
        assert_eq!(t.since(Time::secs(20.0)), Dur::secs(200.0));
        assert_eq!(Time::secs(10.0) - Dur::secs(4.0), Time::secs(6.0));
        assert_eq!(Dur::hours(1.0) + Dur::mins(30.0), Dur::mins(90.0));
    }

    #[test]
    fn infinite_delay() {
        assert_eq!(Time::INF.since(Time::ZERO), Dur::INF);
        assert!(!Time::INF.is_finite());
        assert!(Dur::INF > Dur::days(1e9));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn inf_minus_inf_panics() {
        let _ = Time::INF.since(Time::INF);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = Time::secs(f64::NAN);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Dur::days(1.0).as_hours(), 24.0);
        assert_eq!(Dur::weeks(1.0).as_days(), 7.0);
        assert_eq!(Dur::mins(2.0).as_secs(), 120.0);
        assert_eq!(Dur::hours(0.5).as_mins(), 30.0);
    }

    #[test]
    fn display_humane() {
        assert_eq!(Dur::secs(90.0).to_string(), "1m30s");
        assert_eq!(Dur::hours(2.0).to_string(), "2h");
        assert_eq!(Dur::days(1.0).to_string(), "1d");
        assert_eq!(Dur::secs(0.5).to_string(), "0.500s");
        assert_eq!(Dur::INF.to_string(), "∞");
        assert_eq!((Dur::days(2.0) + Dur::hours(3.0)).to_string(), "2d3h");
        assert_eq!(Time::INF.to_string(), "∞");
        assert_eq!(Time::NEG_INF.to_string(), "-∞");
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(Time::secs(-0.0), Time::ZERO);
        assert_eq!(Time::secs(0.0) - Dur::secs(0.0), Time::ZERO);
        assert_eq!(Dur::secs(-0.0), Dur::ZERO);
        assert!((Time::secs(-0.0) >= Time::ZERO));
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::secs(1.0), Dur::secs(2.0), Dur::secs(3.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::secs(6.0));
    }
}
