//! Golden-artifact compatibility: the committed fixture under
//! `tests/fixtures/` must load with every build. If this test fails after
//! an intentional format change, bump `FORMAT_VERSION` and regenerate the
//! fixture with `OMNA_REGEN_GOLDEN=1 cargo test -p omnet-artifact --test
//! golden`.

use omnet_artifact::{load_set, write_set, ArtifactMeta};
use omnet_core::{AllPairsProfiles, HopBound, ProfileOptions};
use omnet_temporal::{NodeId, Trace, TraceBuilder};
use std::path::{Path, PathBuf};

/// The fixed trace the golden fixture encodes: 5 nodes (4 internal), mixed
/// chain/store-and-forward structure exercising multi-pair frontiers.
fn golden_trace() -> Trace {
    TraceBuilder::new()
        .num_nodes(5)
        .internal(4)
        .contact_secs(0, 1, 0.0, 120.0)
        .contact_secs(1, 2, 100.0, 260.0)
        .contact_secs(2, 3, 400.0, 520.0)
        .contact_secs(0, 3, 800.0, 920.0)
        .contact_secs(0, 1, 600.0, 720.0)
        .contact_secs(3, 4, 450.0, 470.0)
        .contact_secs(1, 4, 30.0, 40.0)
        .build()
}

fn golden_meta(t: &Trace) -> ArtifactMeta {
    ArtifactMeta {
        dataset_key: "golden/v1".into(),
        num_nodes: t.num_nodes(),
        num_internal: t.num_internal(),
        window: t.span(),
        options: ProfileOptions::default(),
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn golden_fixture_loads_and_answers() {
    let set = load_set(&fixture_dir())
        .expect("committed golden artifact failed to load: format compatibility break");
    let t = golden_trace();
    assert_eq!(set.meta, golden_meta(&t));
    assert_eq!(set.num_rows() as u32, t.num_nodes());
    let all = AllPairsProfiles::compute(&t, set.meta.options);
    for s in 0..t.num_nodes() {
        let row = set.row(s).expect("source covered");
        for d in 0..t.num_nodes() {
            assert_eq!(
                row.profile(NodeId(d), HopBound::Unlimited).pairs(),
                all.profile(NodeId(s), NodeId(d), HopBound::Unlimited)
                    .pairs(),
                "golden answers diverged for {s}->{d}"
            );
            for k in 1..=4usize {
                assert_eq!(
                    row.profile(NodeId(d), HopBound::AtMost(k)).pairs(),
                    all.profile(NodeId(s), NodeId(d), HopBound::AtMost(k))
                        .pairs(),
                    "golden answers diverged for {s}->{d} at k={k}"
                );
            }
        }
    }
}

#[test]
fn golden_fixture_bytes_are_current() {
    let t = golden_trace();
    let meta = golden_meta(&t);
    let rows = AllPairsProfiles::compute(&t, meta.options).into_rows();
    if std::env::var_os("OMNA_REGEN_GOLDEN").is_some() {
        write_set(&fixture_dir(), "golden", &meta, &rows, 2).expect("regen fixture");
        return;
    }
    let fresh_dir = std::env::temp_dir().join(format!("omna-golden-check-{}", std::process::id()));
    std::fs::remove_dir_all(&fresh_dir).ok();
    let fresh = write_set(&fresh_dir, "golden", &meta, &rows, 2).expect("write fresh");
    for path in &fresh {
        let name = path.file_name().expect("shard file name");
        let committed = fixture_dir().join(name);
        let a = std::fs::read(&committed)
            .unwrap_or_else(|e| panic!("missing committed fixture {}: {e}", committed.display()));
        let b = std::fs::read(path).expect("fresh shard");
        assert_eq!(
            a,
            b,
            "encoder output changed for {}: bump FORMAT_VERSION and regenerate \
             (OMNA_REGEN_GOLDEN=1)",
            name.to_string_lossy()
        );
    }
    std::fs::remove_dir_all(&fresh_dir).ok();
}
