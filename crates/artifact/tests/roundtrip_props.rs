//! Property tests of the artifact format: for random traces, every
//! `ProfileOptions` knob combination, and every shard split, write→load is
//! semantically lossless — the reconstructed rows answer every
//! `(dest, bound)` profile query identically to the in-memory engine —
//! and random corruption is always rejected, never mis-decoded.

use omnet_artifact::{load_set, load_shard, map_shard, write_set, ArtifactError, ArtifactMeta};
use omnet_core::{
    AllPairsProfiles, ArcPruning, HopBound, LevelStorage, ProfileOptions, SourceProfiles,
};
use omnet_temporal::{NodeId, Trace, TraceBuilder};
use proptest::prelude::*;
use std::path::PathBuf;

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        3u32..7,
        prop::collection::vec((0u32..200, 1u32..60, 0u32..100), 1..14),
    )
        .prop_map(|(nodes, raw)| {
            let mut b = TraceBuilder::new().num_nodes(nodes);
            for (s, d, pair_seed) in raw {
                let u = pair_seed % nodes;
                let v = (pair_seed / nodes + 1 + u) % nodes;
                if u != v {
                    b = b.contact_secs(u, v, s as f64, (s + d) as f64);
                }
            }
            b.build()
        })
}

fn options_strategy() -> impl Strategy<Value = ProfileOptions> {
    (0usize..6, 0u8..2, 0u8..2).prop_map(|(store, ap, ls)| {
        ProfileOptions::builder()
            .store_levels(store)
            .arc_pruning(if ap == 0 {
                ArcPruning::Exhaustive
            } else {
                ArcPruning::TimeIndexed
            })
            .level_storage(if ls == 0 {
                LevelStorage::FullClones
            } else {
                LevelStorage::Deltas
            })
            .build()
    })
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("omna-props-{tag}-{}-{n}", std::process::id()))
}

fn assert_rows_equivalent(orig: &AllPairsProfiles, row: &SourceProfiles, s: u32) {
    let n = orig.num_nodes() as u32;
    for d in 0..n {
        for k in 0..=row.stored_levels() + 2 {
            assert_eq!(
                row.profile(NodeId(d), HopBound::AtMost(k)).pairs(),
                orig.profile(NodeId(s), NodeId(d), HopBound::AtMost(k))
                    .pairs(),
                "source {s} dest {d} k={k}"
            );
        }
        assert_eq!(
            row.profile(NodeId(d), HopBound::Unlimited).pairs(),
            orig.profile(NodeId(s), NodeId(d), HopBound::Unlimited)
                .pairs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn write_load_is_lossless(
        trace in trace_strategy(),
        opts in options_strategy(),
        shards in 1u32..5,
    ) {
        let all = AllPairsProfiles::compute(&trace, opts);
        let meta = ArtifactMeta {
            dataset_key: "props".into(),
            num_nodes: trace.num_nodes(),
            num_internal: trace.num_internal(),
            window: trace.span(),
            options: opts,
        };
        let dir = tmp_dir("rt");
        write_set(&dir, "props", &meta, all.rows(), shards).expect("write");
        let set = load_set(&dir).expect("load");
        prop_assert_eq!(set.num_rows() as u32, trace.num_nodes());
        prop_assert_eq!(&set.meta, &meta);
        for s in 0..trace.num_nodes() {
            let row = set.row(s).expect("covered");
            assert_rows_equivalent(&all, row, s);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_never_decodes(
        trace in trace_strategy(),
        byte_seed in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let opts = ProfileOptions::default();
        let all = AllPairsProfiles::compute(&trace, opts);
        let meta = ArtifactMeta {
            dataset_key: "corrupt".into(),
            num_nodes: trace.num_nodes(),
            num_internal: trace.num_internal(),
            window: trace.span(),
            options: opts,
        };
        let dir = tmp_dir("cor");
        let paths = write_set(&dir, "corrupt", &meta, all.rows(), 1).expect("write");
        let good = std::fs::read(&paths[0]).expect("read back");
        let mut bad = good.clone();
        let idx = byte_seed % bad.len();
        bad[idx] ^= 1 << bit;
        std::fs::write(&paths[0], &bad).expect("rewrite");
        match load_shard(&paths[0]) {
            // A flipped bit must surface as a typed rejection...
            Err(
                ArtifactError::BadMagic { .. }
                | ArtifactError::UnsupportedVersion { .. }
                | ArtifactError::Truncated { .. }
                | ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::Corrupt { .. }
                | ArtifactError::InvalidProfile(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected rejection shape: {other}"),
            // ...never as silently different answers (checksums make a
            // surviving load impossible except for the flipped bit being
            // repaired by... nothing; loads must equal the original).
            Ok(loaded) => {
                for s in 0..trace.num_nodes() {
                    let row = &loaded.rows[s as usize];
                    assert_rows_equivalent(&all, row, s);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Differential corruption oracle: the buffered loader and the mapped
    /// (lazy-verify) loader must reach the same verdict on the same bytes
    /// — identical rows on accept, the same rejection class on reject. The
    /// only behavioral difference allowed is *when* the rejection happens
    /// (map time vs first row access), never *whether* or *which*.
    #[test]
    fn corruption_verdicts_match_between_loaders(
        trace in trace_strategy(),
        byte_seed in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let opts = ProfileOptions::default();
        let all = AllPairsProfiles::compute(&trace, opts);
        let meta = ArtifactMeta {
            dataset_key: "diff".into(),
            num_nodes: trace.num_nodes(),
            num_internal: trace.num_internal(),
            window: trace.span(),
            options: opts,
        };
        let dir = tmp_dir("diff");
        let paths = write_set(&dir, "diff", &meta, all.rows(), 1).expect("write");
        let good = std::fs::read(&paths[0]).expect("read back");
        let mut bad = good.clone();
        let idx = byte_seed % bad.len();
        bad[idx] ^= 1 << bit;
        std::fs::write(&paths[0], &bad).expect("rewrite");
        let buffered = load_shard(&paths[0]);
        // Compose the mapped path's two stages (eager header + lazy rows)
        // into one verdict.
        let mapped: Result<Vec<_>, ArtifactError> =
            map_shard(&paths[0]).and_then(|s| s.rows().map(<[_]>::to_vec));
        match (buffered, mapped) {
            (Ok(b), Ok(m)) => {
                prop_assert_eq!(b.rows.len(), m.len());
                for (br, mr) in b.rows.iter().zip(&m) {
                    prop_assert_eq!(br.to_parts(), mr.to_parts());
                }
            }
            (Err(be), Err(me)) => {
                prop_assert_eq!(
                    std::mem::discriminant(&be),
                    std::mem::discriminant(&me),
                    "rejection classes diverged: buffered {be}, mapped {me}"
                );
            }
            (b, m) => {
                prop_assert!(
                    false,
                    "loaders disagree: buffered {:?}, mapped {:?}",
                    b.map(|s| s.rows.len()),
                    m.map(|r| r.len())
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
