//! Little-endian byte codec and the FNV-1a checksum shared by the header
//! and section encoders.

use crate::ArtifactError;

/// FNV-1a, 64-bit: the artifact's section and header checksum. Chosen for
/// determinism, zero dependencies, and speed — this is an integrity check
/// against truncation and bit rot, not an adversarial MAC.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip,
    /// including signed zero and infinities).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Consumes the writer into its buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a byte slice; every read
/// returns [`ArtifactError::Truncated`] with the caller's context when the
/// slice runs out.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, ArtifactError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, ArtifactError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, ArtifactError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` bit pattern, rejecting NaN — no field of the format
    /// admits one, and letting a NaN through would poison every time
    /// comparison downstream.
    pub fn f64_bits(&mut self, context: &'static str) -> Result<f64, ArtifactError> {
        let v = f64::from_bits(self.u64(context)?);
        if v.is_nan() {
            return Err(ArtifactError::Corrupt {
                context: "NaN time value",
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64_bits(-0.0);
        w.f64_bits(f64::INFINITY);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert_eq!(r.f64_bits("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64_bits("f").unwrap(), f64::INFINITY);
        assert_eq!(r.remaining(), 0);
        assert!(matches!(
            r.u8("g"),
            Err(ArtifactError::Truncated { context: "g" })
        ));
    }

    #[test]
    fn nan_is_rejected() {
        let mut w = Writer::new();
        w.u64(f64::NAN.to_bits());
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.f64_bits("t"),
            Err(ArtifactError::Corrupt { .. })
        ));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
