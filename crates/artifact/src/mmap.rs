//! Read-only memory-mapped file access with a buffered fallback.
//!
//! The artifact loaders originally slurped every shard with
//! `std::fs::read`, so cold-starting a server over a large set paid a
//! full sequential read of every byte before the first query. [`Mmap`]
//! maps the file `PROT_READ`/`MAP_PRIVATE` instead: the loader touches
//! only the header pages eagerly, and row bytes fault in lazily when a
//! shard is first queried. No mapping crate is vendored, so the handful
//! of `mmap`/`munmap` calls are declared directly against the C library
//! std already links on unix.
//!
//! On non-unix targets (or when the kernel refuses the mapping) the type
//! degrades to an owned buffer read the old way — callers see the same
//! `&[u8]` either way and can ask [`Mmap::is_mapped`] which path they
//! got.
//!
//! Caveat shared by every mmap consumer: if the underlying file is
//! truncated by another process while mapped, touching the vanished
//! pages raises `SIGBUS`. Artifact shards are written once and renamed
//! into place, never truncated in place, so the loaders accept this.
//!
//! Safety: the only unsafe code is the FFI pair plus the
//! pointer-to-slice view of a successful mapping; see the SAFETY
//! comments at each site. The module-level `allow` below is the only
//! place this crate lifts the workspace-wide `deny(unsafe_code)`.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use core::ffi::c_void;

    /// `PROT_READ` on every unix this crate targets.
    pub(super) const PROT_READ: i32 = 1;
    /// `MAP_PRIVATE` on Linux and the BSDs.
    pub(super) const MAP_PRIVATE: i32 = 2;

    extern "C" {
        /// POSIX `mmap(2)`. `off_t` is 64-bit on every 64-bit unix, which
        /// the enclosing `target_pointer_width = "64"` gate guarantees.
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        /// POSIX `munmap(2)`.
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum Inner {
    /// A live `PROT_READ` mapping; unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// The whole file, read eagerly (empty files, non-unix targets, or a
    /// kernel that refused the mapping).
    Buffered(Vec<u8>),
}

// SAFETY: a `Mapped` variant is an exclusively owned, read-only,
// private, fixed-size mapping — no interior mutability, no aliasing
// handles — so moving the owner across threads is sound. `Buffered`
// is a plain `Vec<u8>`.
unsafe impl Send for Inner {}
// SAFETY: all access through `&Mmap` is `&[u8]` reads of immutable
// pages; concurrent readers are sound.
unsafe impl Sync for Inner {}

/// A read-only view of one file: memory-mapped where the platform
/// supports it, an owned buffer otherwise. Dereferences to `&[u8]`.
pub struct Mmap {
    inner: Inner,
}

impl Mmap {
    /// Opens `path` read-only and maps (or reads) its current contents.
    pub fn map(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "file larger than the address space",
            )
        })?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            if len == 0 {
                // A zero-length mmap is EINVAL; an empty buffer is the
                // same observable value.
                return Ok(Mmap {
                    inner: Inner::Buffered(Vec::new()),
                });
            }
            // SAFETY: plain FFI call; a NULL hint with PROT_READ |
            // MAP_PRIVATE over a freshly opened fd has no preconditions.
            // `len` is the exact file size, nonzero, checked above.
            let ptr = unsafe {
                sys::mmap(
                    core::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize != usize::MAX {
                // The fd can close now: POSIX keeps the mapping alive
                // independently of the descriptor.
                return Ok(Mmap {
                    inner: Inner::Mapped { ptr, len },
                });
            }
            // MAP_FAILED: fall through to the buffered path (e.g. a
            // filesystem without mmap support).
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Buffered(buf),
        })
    }

    /// The file's bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: `ptr` is a successful, still-live mapping of
                // exactly `len` readable bytes (unmapped only in Drop,
                // which cannot run while `&self` is borrowed), and the
                // pages are never written through this or any other
                // handle.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Inner::Buffered(v) => v,
        }
    }

    /// Whether the bytes come from a live mapping rather than an owned
    /// buffer (observable in stats and asserted by the scaling tests).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { .. } => true,
            Inner::Buffered(_) => false,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: `(ptr, len)` came from the successful mmap in
            // `Mmap::map` and is unmapped exactly once, here. Failure is
            // unactionable in a destructor and leaks at worst.
            let _ = unsafe { sys::munmap(ptr, len) };
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.as_slice().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("omna-mmap-{tag}-{}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let payload: Vec<u8> = (0u32..10_000).flat_map(u32::to_le_bytes).collect();
        let p = tmp("exact", &payload);
        let m = Mmap::map(&p).unwrap();
        assert_eq!(m.as_slice(), &payload[..]);
        assert_eq!(&m[..8], &payload[..8]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(m.is_mapped());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let p = tmp("empty", &[]);
        let m = Mmap::map(&p).unwrap();
        assert!(m.as_slice().is_empty());
        assert!(!m.is_mapped());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = std::env::temp_dir().join("omna-mmap-definitely-missing");
        assert!(Mmap::map(&p).is_err());
    }

    #[test]
    fn shareable_across_threads() {
        let payload = vec![7u8; 4096 * 3];
        let p = tmp("threads", &payload);
        let m = std::sync::Arc::new(Mmap::map(&p).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || m.as_slice().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096 * 3);
        }
        std::fs::remove_file(&p).ok();
    }
}
