//! The typed rejection vocabulary of the artifact layer.

use omnet_core::ProfilePartsError;
use std::fmt;
use std::path::PathBuf;

/// Why an artifact could not be written, read, or trusted.
///
/// Every load-path failure is one of these — a corrupted, truncated, or
/// version-bumped artifact is always rejected with a variant naming the
/// first violated check, never decoded into garbage profiles.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The underlying file operation failed.
    Io {
        /// What the operation was trying to do.
        context: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the `OMNPROF1` magic.
    BadMagic {
        /// The first eight bytes found instead.
        found: [u8; 8],
    },
    /// The file's format version is not the one this build reads.
    UnsupportedVersion {
        /// Version the file claims.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file ended before a field could be read.
    Truncated {
        /// The field or section being read.
        context: &'static str,
    },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// The header or section that failed.
        what: &'static str,
    },
    /// A field decoded to a value the format forbids.
    Corrupt {
        /// The violated constraint.
        context: &'static str,
    },
    /// Shards of one set disagree (metadata, options, ranges, or count).
    SetInconsistent {
        /// The disagreement found.
        context: String,
    },
    /// The decoded profile data failed the engine's frontier validation.
    InvalidProfile(ProfilePartsError),
}

impl Clone for ArtifactError {
    /// Clones the rejection. `std::io::Error` is not `Clone`, so the
    /// [`ArtifactError::Io`] variant clones as a new error of the same
    /// kind carrying the original's rendered message — the typed context
    /// and path are preserved exactly. Needed so a lazily-verified shard
    /// can cache its rejection once and hand it to every later caller.
    fn clone(&self) -> ArtifactError {
        match self {
            ArtifactError::Io {
                context,
                path,
                source,
            } => ArtifactError::Io {
                context,
                path: path.clone(),
                source: std::io::Error::new(source.kind(), source.to_string()),
            },
            ArtifactError::BadMagic { found } => ArtifactError::BadMagic { found: *found },
            ArtifactError::UnsupportedVersion { found, supported } => {
                ArtifactError::UnsupportedVersion {
                    found: *found,
                    supported: *supported,
                }
            }
            ArtifactError::Truncated { context } => ArtifactError::Truncated { context },
            ArtifactError::ChecksumMismatch { what } => ArtifactError::ChecksumMismatch { what },
            ArtifactError::Corrupt { context } => ArtifactError::Corrupt { context },
            ArtifactError::SetInconsistent { context } => ArtifactError::SetInconsistent {
                context: context.clone(),
            },
            ArtifactError::InvalidProfile(e) => ArtifactError::InvalidProfile(*e),
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} {}: {source}", path.display()),
            ArtifactError::BadMagic { found } => {
                write!(f, "not a profile artifact (magic {found:02x?})")
            }
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact format version {found} unsupported (this build reads {supported})"
                )
            }
            ArtifactError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            ArtifactError::ChecksumMismatch { what } => {
                write!(f, "artifact {what} checksum mismatch")
            }
            ArtifactError::Corrupt { context } => write!(f, "artifact corrupt: {context}"),
            ArtifactError::SetInconsistent { context } => {
                write!(f, "artifact set inconsistent: {context}")
            }
            ArtifactError::InvalidProfile(e) => write!(f, "artifact profile data invalid: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            ArtifactError::InvalidProfile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProfilePartsError> for ArtifactError {
    fn from(e: ProfilePartsError) -> ArtifactError {
        ArtifactError::InvalidProfile(e)
    }
}
