//! Persisted profile artifacts: a versioned binary format for the §4.4
//! all-pairs delivery profiles, sharded by source range.
//!
//! Once `AllPairsProfiles` is built for a trace, every (source, dest, t)
//! delivery/path/diameter question is a lookup — so the profiles are worth
//! persisting. This crate defines the `.omna` artifact format (see
//! DESIGN.md §13 for the byte-level layout and versioning policy):
//!
//! * an explicit header — magic, format version, an engine-options
//!   fingerprint, the dataset key, the node universe and observation
//!   window, and the shard's source range;
//! * one checksummed ROWS section holding the delta-aware encoding of each
//!   source's per-level delivery-function additions
//!   ([`omnet_core::SourceProfileParts`]);
//! * a fast load path that validates the header and checksums, then
//!   reconstructs [`omnet_core::SourceProfiles`] rows *without re-running
//!   the induction* — corrupted or version-bumped input is rejected with a
//!   typed [`ArtifactError`], never decoded into garbage answers.
//!
//! A profile set is N independent shard files ([`set::write_set`] /
//! [`set::load_set`]), each covering a contiguous source range, so shards
//! load, verify, and answer queries independently.
//!
//! Two load paths share one decoder:
//!
//! * the **buffered** path ([`load_shard`] / [`load_set`]) reads, verifies,
//!   and decodes everything eagerly — the right shape for one-shot CLI
//!   commands and for differential testing;
//! * the **mapped** path ([`map_shard`] / [`map_set`]) memory-maps each
//!   shard, validates only the header eagerly, and defers the ROWS
//!   checksum + frontier validation to first access per shard — the
//!   server's cold-start path, bounded by page faults instead of full
//!   reads.

#![deny(missing_docs)]

pub mod codec;
pub mod format;
pub mod mapped;
pub mod mmap;
pub mod set;
pub mod shard;

mod error;

pub use error::ArtifactError;
pub use format::{ArtifactMeta, ShardRange, FORMAT_VERSION, MAGIC};
pub use mapped::{map_set, map_shard, MappedSet, MappedShard};
pub use set::{load_set, shard_ranges, write_set, ArtifactSet};
pub use shard::{load_shard, write_shard, ShardArtifact};

use omnet_obs::Counter;

/// Shard files written.
pub(crate) static WRITES: Counter = Counter::new("artifact.writes");
/// Shard files loaded and verified.
pub(crate) static LOADS: Counter = Counter::new("artifact.loads");
/// Shard files rejected (bad magic, version, checksum, or content).
pub(crate) static REJECTS: Counter = Counter::new("artifact.rejects");
/// Total artifact bytes written.
pub(crate) static BYTES_WRITTEN: Counter = Counter::new("artifact.bytes_written");
/// Total artifact bytes read.
pub(crate) static BYTES_READ: Counter = Counter::new("artifact.bytes_read");
