//! Header layout, versioning, and the engine-options fingerprint.
//!
//! One `.omna` file = header + sections, all little-endian:
//!
//! ```text
//! magic "OMNPROF1" (8)  version u32  header_len u32
//! options_fp u64
//! dataset_key: len u16 + UTF-8 bytes
//! num_nodes u32  num_internal u32
//! window.start f64-bits  window.end f64-bits
//! shard: index u32  count u32  begin u32  end u32
//! options: store_levels u32  max_levels u32  arc_pruning u8  level_storage u8
//! section table: count u32, then per section (id u32, len u64, fnv1a64 u64)
//! header checksum: fnv1a64 over all preceding header bytes
//! ```
//!
//! Section bodies follow the header sequentially in table order. Unknown
//! section ids are skipped on load (additive extensions don't bump the
//! version); any change to the header or an existing section's encoding
//! bumps [`FORMAT_VERSION`], and loaders reject other versions outright.

use crate::codec::{fnv1a64, Reader, Writer};
use crate::ArtifactError;
use omnet_core::{ArcPruning, LevelStorage, ProfileOptions};
use omnet_temporal::{Interval, Time};

/// First eight bytes of every profile artifact.
pub const MAGIC: [u8; 8] = *b"OMNPROF1";

/// The one format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Section id of the profile-rows payload.
pub const SECTION_ROWS: u32 = 1;

/// Dataset- and engine-level identity of a profile set, stored in every
/// shard header and required to agree across a set.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMeta {
    /// Free-form identity of the trace the profiles were computed from
    /// (e.g. `infocom05/days0.5/seed7`).
    pub dataset_key: String,
    /// Node universe size of the trace.
    pub num_nodes: u32,
    /// Number of internal devices (complete logs).
    pub num_internal: u32,
    /// The trace's observation window.
    pub window: Interval,
    /// Options the §4.4 induction ran with.
    pub options: ProfileOptions,
}

/// Which contiguous source range a shard covers, and its position in the
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Shard position, `0..count`.
    pub index: u32,
    /// Total shards in the set.
    pub count: u32,
    /// First source covered (inclusive).
    pub begin: u32,
    /// One past the last source covered.
    pub end: u32,
}

/// Canonical byte encoding of the options knobs that determine profile
/// content. Errors on knob variants this build does not know (the enums are
/// `#[non_exhaustive]`) — such options cannot be persisted faithfully.
fn options_bytes(o: &ProfileOptions) -> Result<[u8; 10], ArtifactError> {
    let ap = match o.arc_pruning {
        ArcPruning::Exhaustive => 0u8,
        ArcPruning::TimeIndexed => 1,
        _ => {
            return Err(ArtifactError::Corrupt {
                context: "unencodable arc_pruning variant",
            })
        }
    };
    let ls = match o.level_storage {
        LevelStorage::FullClones => 0u8,
        LevelStorage::Deltas => 1,
        _ => {
            return Err(ArtifactError::Corrupt {
                context: "unencodable level_storage variant",
            })
        }
    };
    let sl = (o.store_levels.min(u32::MAX as usize) as u32).to_le_bytes();
    let ml = (o.max_levels.min(u32::MAX as usize) as u32).to_le_bytes();
    Ok([
        sl[0], sl[1], sl[2], sl[3], ml[0], ml[1], ml[2], ml[3], ap, ls,
    ])
}

/// Fingerprint of the engine options: FNV-1a over the canonical encoding.
/// Two artifacts are query-compatible only when their fingerprints match.
pub fn options_fingerprint(o: &ProfileOptions) -> Result<u64, ArtifactError> {
    Ok(fnv1a64(&options_bytes(o)?))
}

fn decode_options(sl: u32, ml: u32, ap: u8, ls: u8) -> Result<ProfileOptions, ArtifactError> {
    let arc_pruning = match ap {
        0 => ArcPruning::Exhaustive,
        1 => ArcPruning::TimeIndexed,
        _ => {
            return Err(ArtifactError::Corrupt {
                context: "unknown arc_pruning code",
            })
        }
    };
    let level_storage = match ls {
        0 => LevelStorage::FullClones,
        1 => LevelStorage::Deltas,
        _ => {
            return Err(ArtifactError::Corrupt {
                context: "unknown level_storage code",
            })
        }
    };
    Ok(ProfileOptions::builder()
        .store_levels(sl as usize)
        .max_levels(ml as usize)
        .arc_pruning(arc_pruning)
        .level_storage(level_storage)
        .build())
}

/// Serializes the header (including its trailing checksum) for a shard
/// whose sections are `(id, len, checksum)` in file order.
pub(crate) fn encode_header(
    meta: &ArtifactMeta,
    range: &ShardRange,
    sections: &[(u32, u64, u64)],
) -> Result<Vec<u8>, ArtifactError> {
    if meta.dataset_key.len() > u16::MAX as usize {
        return Err(ArtifactError::Corrupt {
            context: "dataset key longer than 64 KiB",
        });
    }
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(0); // header_len, patched below
    w.u64(options_fingerprint(&meta.options)?);
    w.u16(meta.dataset_key.len() as u16);
    w.bytes(meta.dataset_key.as_bytes());
    w.u32(meta.num_nodes);
    w.u32(meta.num_internal);
    w.f64_bits(meta.window.start.as_secs());
    w.f64_bits(meta.window.end.as_secs());
    w.u32(range.index);
    w.u32(range.count);
    w.u32(range.begin);
    w.u32(range.end);
    w.bytes(&options_bytes(&meta.options)?);
    w.u32(sections.len() as u32);
    for &(id, len, ck) in sections {
        w.u32(id);
        w.u64(len);
        w.u64(ck);
    }
    let header_len = (w.len() + 8) as u32;
    let mut buf = w.into_vec();
    buf[12..16].copy_from_slice(&header_len.to_le_bytes());
    let ck = fnv1a64(&buf);
    buf.extend_from_slice(&ck.to_le_bytes());
    Ok(buf)
}

/// One section-table entry: `(id, body length, fnv1a64 checksum)`.
pub(crate) type SectionEntry = (u32, u64, u64);

/// Validates and decodes the header at the start of `file`, returning the
/// metadata, shard range, section table, and the header's byte length
/// (where section bodies begin).
pub(crate) fn parse_header(
    file: &[u8],
) -> Result<(ArtifactMeta, ShardRange, Vec<SectionEntry>, usize), ArtifactError> {
    let mut r = Reader::new(file);
    let magic = r.take(8, "magic")?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(ArtifactError::BadMagic { found });
    }
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let header_len = r.u32("header length")? as usize;
    if header_len < 24 || header_len > file.len() {
        return Err(ArtifactError::Truncated {
            context: "header body",
        });
    }
    let stored_ck =
        u64::from_le_bytes(file[header_len - 8..header_len].try_into().map_err(|_| {
            ArtifactError::Truncated {
                context: "header checksum",
            }
        })?);
    if fnv1a64(&file[..header_len - 8]) != stored_ck {
        return Err(ArtifactError::ChecksumMismatch { what: "header" });
    }

    let options_fp = r.u64("options fingerprint")?;
    let key_len = r.u16("dataset key length")? as usize;
    let key_bytes = r.take(key_len, "dataset key")?;
    let dataset_key = std::str::from_utf8(key_bytes)
        .map_err(|_| ArtifactError::Corrupt {
            context: "dataset key is not UTF-8",
        })?
        .to_string();
    let num_nodes = r.u32("num_nodes")?;
    let num_internal = r.u32("num_internal")?;
    let w_start = r.f64_bits("window start")?;
    let w_end = r.f64_bits("window end")?;
    if w_start > w_end {
        return Err(ArtifactError::Corrupt {
            context: "window start after end",
        });
    }
    let range = ShardRange {
        index: r.u32("shard index")?,
        count: r.u32("shard count")?,
        begin: r.u32("shard begin")?,
        end: r.u32("shard end")?,
    };
    let sl = r.u32("store_levels")?;
    let ml = r.u32("max_levels")?;
    let ap = r.u8("arc_pruning")?;
    let ls = r.u8("level_storage")?;
    let options = decode_options(sl, ml, ap, ls)?;
    if options_fingerprint(&options)? != options_fp {
        return Err(ArtifactError::Corrupt {
            context: "options fingerprint does not match stored options",
        });
    }
    if num_internal > num_nodes {
        return Err(ArtifactError::Corrupt {
            context: "more internal devices than nodes",
        });
    }
    if range.begin > range.end
        || range.end > num_nodes
        || range.count == 0
        || range.index >= range.count
    {
        return Err(ArtifactError::Corrupt {
            context: "shard range outside universe",
        });
    }
    let section_count = r.u32("section count")? as usize;
    if section_count.saturating_mul(20) > header_len {
        return Err(ArtifactError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(section_count);
    for _ in 0..section_count {
        let id = r.u32("section id")?;
        let len = r.u64("section length")?;
        let ck = r.u64("section checksum")?;
        sections.push((id, len, ck));
    }
    if r.pos() != header_len - 8 {
        return Err(ArtifactError::Corrupt {
            context: "header length does not match its fields",
        });
    }
    let meta = ArtifactMeta {
        dataset_key,
        num_nodes,
        num_internal,
        window: Interval::new(Time::secs(w_start), Time::secs(w_end)),
        options,
    };
    Ok((meta, range, sections, header_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ArtifactMeta {
        ArtifactMeta {
            dataset_key: "test/ds".into(),
            num_nodes: 10,
            num_internal: 8,
            window: Interval::secs(0.0, 1000.0),
            options: ProfileOptions::default(),
        }
    }

    fn range() -> ShardRange {
        ShardRange {
            index: 0,
            count: 2,
            begin: 0,
            end: 5,
        }
    }

    #[test]
    fn header_roundtrip() {
        let sections = vec![(SECTION_ROWS, 42u64, 7u64)];
        let buf = encode_header(&meta(), &range(), &sections).unwrap();
        // Pretend the body follows.
        let mut file = buf.clone();
        file.extend_from_slice(&[0u8; 42]);
        let (m, rg, secs, hlen) = parse_header(&file).unwrap();
        assert_eq!(m, meta());
        assert_eq!(rg, range());
        assert_eq!(secs, sections);
        assert_eq!(hlen, buf.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = encode_header(&meta(), &range(), &[]).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            parse_header(&buf),
            Err(ArtifactError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_bump_rejected() {
        let mut buf = encode_header(&meta(), &range(), &[]).unwrap();
        buf[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            parse_header(&buf),
            Err(ArtifactError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut buf = encode_header(&meta(), &range(), &[]).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(matches!(
            parse_header(&buf),
            Err(ArtifactError::ChecksumMismatch { what: "header" })
                | Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let buf = encode_header(&meta(), &range(), &[]).unwrap();
        for cut in [0, 4, 11, buf.len() / 2, buf.len() - 1] {
            assert!(
                parse_header(&buf[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn fingerprint_distinguishes_options() {
        let a = options_fingerprint(&ProfileOptions::default()).unwrap();
        let b = options_fingerprint(&ProfileOptions::builder().store_levels(3).build()).unwrap();
        assert_ne!(a, b);
    }
}
