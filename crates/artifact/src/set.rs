//! Sharded artifact sets: N independent shard files covering disjoint
//! source ranges of one profile computation.

use crate::format::{ArtifactMeta, ShardRange};
use crate::shard::{load_shard, write_shard, ShardArtifact};
use crate::ArtifactError;
use omnet_core::SourceProfiles;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Splits `num_sources` sources into `shards` contiguous, balanced ranges
/// (the first `num_sources % shards` ranges get one extra source). The
/// shard count is clamped to `1..=num_sources.max(1)`.
pub fn shard_ranges(num_sources: u32, shards: u32) -> Vec<Range<u32>> {
    let shards = shards.clamp(1, num_sources.max(1));
    let base = num_sources / shards;
    let extra = num_sources % shards;
    let mut out = Vec::with_capacity(shards as usize);
    let mut begin = 0u32;
    for i in 0..shards {
        let len = base + u32::from(i < extra);
        out.push(begin..begin + len);
        begin += len;
    }
    out
}

/// File name of shard `index` of `count` for a set stem:
/// `{stem}.{index:04}-of-{count:04}.omna`. Lexicographic filename order is
/// shard order.
pub fn shard_file_name(stem: &str, index: u32, count: u32) -> String {
    format!("{stem}.{index:04}-of-{count:04}.omna")
}

/// Writes a complete profile set as `shards` files under `dir` (created if
/// missing); `rows` must be all sources `0..meta.num_nodes` ascending.
/// Returns the written paths in shard order.
pub fn write_set(
    dir: &Path,
    stem: &str,
    meta: &ArtifactMeta,
    rows: &[SourceProfiles],
    shards: u32,
) -> Result<Vec<PathBuf>, ArtifactError> {
    if rows.len() as u32 != meta.num_nodes {
        return Err(ArtifactError::Corrupt {
            context: "need one row per node to write a set",
        });
    }
    std::fs::create_dir_all(dir).map_err(|source| ArtifactError::Io {
        context: "cannot create artifact directory",
        path: PathBuf::from(dir),
        source,
    })?;
    let ranges = shard_ranges(meta.num_nodes, shards);
    let count = ranges.len() as u32;
    let mut paths = Vec::with_capacity(ranges.len());
    for (i, r) in ranges.iter().enumerate() {
        let path = dir.join(shard_file_name(stem, i as u32, count));
        let range = ShardRange {
            index: i as u32,
            count,
            begin: r.start,
            end: r.end,
        };
        write_shard(&path, meta, range, &rows[r.start as usize..r.end as usize])?;
        paths.push(path);
    }
    Ok(paths)
}

/// A loaded set: every shard verified individually and cross-checked for
/// consistency. Shards are ordered by source range; gaps are allowed (a
/// partial set still answers queries whose sources it covers).
#[derive(Debug, Clone)]
pub struct ArtifactSet {
    /// The metadata every shard agreed on.
    pub meta: ArtifactMeta,
    /// Loaded shards, ascending by `range.begin`, pairwise disjoint.
    pub shards: Vec<ShardArtifact>,
}

impl ArtifactSet {
    /// The profile row for `source`, or `None` when no loaded shard covers
    /// it.
    pub fn row(&self, source: u32) -> Option<&SourceProfiles> {
        let si = self.shards.partition_point(|s| s.range.end <= source);
        let s = self.shards.get(si)?;
        if source < s.range.begin {
            return None;
        }
        s.rows.get((source - s.range.begin) as usize)
    }

    /// Rows for every source `0..limit` in ascending order, or `None` if
    /// any is not covered (the first missing source is returned in the
    /// error position by [`ArtifactSet::first_missing`]).
    pub fn rows_prefix(&self, limit: u32) -> Option<Vec<&SourceProfiles>> {
        (0..limit).map(|s| self.row(s)).collect()
    }

    /// The smallest source in `0..limit` not covered by a loaded shard.
    pub fn first_missing(&self, limit: u32) -> Option<u32> {
        (0..limit).find(|&s| self.row(s).is_none())
    }

    /// Total profile rows across the loaded shards.
    pub fn num_rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows.len()).sum()
    }
}

/// Loads every `.omna` file under `dir` (sorted by file name) into a
/// verified, cross-checked set.
pub fn load_set(dir: &Path) -> Result<ArtifactSet, ArtifactError> {
    let entries = std::fs::read_dir(dir).map_err(|source| ArtifactError::Io {
        context: "cannot read artifact directory",
        path: PathBuf::from(dir),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| ArtifactError::Io {
            context: "cannot read artifact directory entry",
            path: PathBuf::from(dir),
            source,
        })?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "omna") {
            paths.push(path);
        }
    }
    paths.sort();
    if paths.is_empty() {
        return Err(ArtifactError::SetInconsistent {
            context: format!("no .omna shards in {}", dir.display()),
        });
    }
    let mut shards: Vec<ShardArtifact> = Vec::with_capacity(paths.len());
    for path in &paths {
        shards.push(load_shard(path)?);
    }
    shards.sort_by_key(|s| s.range.begin);
    let meta = shards[0].meta.clone();
    let count = shards[0].range.count;
    for (i, s) in shards.iter().enumerate() {
        if s.meta != meta {
            return Err(ArtifactError::SetInconsistent {
                context: format!(
                    "shard {} metadata disagrees with the set (dataset {:?} vs {:?})",
                    s.range.index, s.meta.dataset_key, meta.dataset_key
                ),
            });
        }
        if s.range.count != count {
            return Err(ArtifactError::SetInconsistent {
                context: format!(
                    "shard {} claims {} total shards, set leader claims {count}",
                    s.range.index, s.range.count
                ),
            });
        }
        if i > 0 && shards[i - 1].range.end > s.range.begin {
            return Err(ArtifactError::SetInconsistent {
                context: format!("shard ranges overlap at source {}", s.range.begin),
            });
        }
    }
    Ok(ArtifactSet { meta, shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnet_core::{AllPairsProfiles, HopBound, ProfileOptions};
    use omnet_temporal::{NodeId, TraceBuilder};

    #[test]
    fn ranges_balanced_and_cover() {
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(4, 1), vec![0..4]);
        assert_eq!(shard_ranges(3, 8), vec![0..1, 1..2, 2..3]);
        assert_eq!(shard_ranges(0, 4), vec![0..0]);
        for (n, s) in [(97u32, 7u32), (5, 5), (1, 1)] {
            let rs = shard_ranges(n, s);
            assert_eq!(rs.first().map(|r| r.start), Some(0));
            assert_eq!(rs.last().map(|r| r.end), Some(n));
            assert!(rs.windows(2).all(|w| w[0].end == w[1].start));
        }
    }

    #[test]
    fn set_roundtrip_with_shard_boundaries() {
        let t = TraceBuilder::new()
            .num_nodes(7)
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(1, 2, 20.0, 30.0)
            .contact_secs(2, 3, 40.0, 50.0)
            .contact_secs(3, 4, 60.0, 70.0)
            .contact_secs(4, 5, 80.0, 90.0)
            .contact_secs(5, 6, 100.0, 110.0)
            .contact_secs(0, 6, 5.0, 95.0)
            .build();
        let opts = ProfileOptions::default();
        let all = AllPairsProfiles::compute(&t, opts);
        let meta = ArtifactMeta {
            dataset_key: "toy7".into(),
            num_nodes: 7,
            num_internal: 7,
            window: t.span(),
            options: opts,
        };
        let dir = std::env::temp_dir().join(format!("omna-set-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let paths = write_set(&dir, "toy7", &meta, all.rows(), 3).unwrap();
        assert_eq!(paths.len(), 3);
        let set = load_set(&dir).unwrap();
        assert_eq!(set.num_rows(), 7);
        assert_eq!(set.first_missing(7), None);
        // Shard ranges are 0..3, 3..5, 5..7: probe each boundary source
        // (first and last of every shard) against the in-memory truth.
        for s in [0u32, 2, 3, 4, 5, 6] {
            let row = set.row(s).expect("covered");
            for d in 0..7u32 {
                assert_eq!(
                    row.profile(NodeId(d), HopBound::Unlimited).pairs(),
                    all.profile(NodeId(s), NodeId(d), HopBound::Unlimited)
                        .pairs(),
                    "source {s} dest {d}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_set_reports_missing() {
        let t = TraceBuilder::new()
            .num_nodes(6)
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(2, 3, 0.0, 10.0)
            .build();
        let opts = ProfileOptions::default();
        let all = AllPairsProfiles::compute(&t, opts);
        let meta = ArtifactMeta {
            dataset_key: "toy6".into(),
            num_nodes: 6,
            num_internal: 6,
            window: t.span(),
            options: opts,
        };
        let dir = std::env::temp_dir().join(format!("omna-part-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let paths = write_set(&dir, "toy6", &meta, all.rows(), 3).unwrap();
        std::fs::remove_file(&paths[1]).unwrap();
        let set = load_set(&dir).unwrap();
        assert_eq!(set.first_missing(6), Some(2));
        assert!(set.row(2).is_none());
        assert!(set.row(1).is_some());
        assert!(set.row(4).is_some());
        assert!(set.rows_prefix(6).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_sets_rejected() {
        let t = TraceBuilder::new()
            .num_nodes(4)
            .contact_secs(0, 1, 0.0, 10.0)
            .build();
        let opts = ProfileOptions::default();
        let all = AllPairsProfiles::compute(&t, opts);
        let mut meta = ArtifactMeta {
            dataset_key: "a".into(),
            num_nodes: 4,
            num_internal: 4,
            window: t.span(),
            options: opts,
        };
        let dir = std::env::temp_dir().join(format!("omna-mixed-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        write_set(&dir, "a", &meta, all.rows(), 2).unwrap();
        // A shard from a *different* dataset dropped into the directory.
        meta.dataset_key = "b".into();
        write_set(&dir, "b", &meta, all.rows(), 2).unwrap();
        assert!(matches!(
            load_set(&dir),
            Err(ArtifactError::SetInconsistent { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
