//! Memory-mapped, lazily-verified shard sets: the server's load path.
//!
//! [`load_set`](crate::load_set) reads, checksums, and decodes every row
//! of every shard before the first query can be answered — cold-start is
//! a full sequential read of the artifact directory. [`map_set`] instead
//! maps each shard file ([`crate::mmap::Mmap`]) and eagerly validates
//! only the header (magic, version, header checksum, section extents):
//! a few pages per shard. The ROWS section's checksum and frontier
//! validation run *once per shard, on first access*, so a server over a
//! 100-shard set that only ever answers sources from three shards never
//! faults in — or verifies — the other ninety-seven.
//!
//! Laziness never weakens the rejection guarantee: a corrupted shard is
//! still impossible to read rows from. The verification is merely moved
//! from load time to first-access time, and its outcome (rows or the
//! typed [`ArtifactError`]) is cached, so every later access agrees.

use crate::codec::fnv1a64;
use crate::format::{ArtifactMeta, ShardRange, SECTION_ROWS};
use crate::mmap::Mmap;
use crate::shard::decode_rows;
use crate::ArtifactError;
use omnet_core::SourceProfiles;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// One mapped shard: header verified eagerly, ROWS section verified and
/// decoded on first [`MappedShard::rows`] call.
#[derive(Debug)]
pub struct MappedShard {
    map: Mmap,
    meta: ArtifactMeta,
    range: ShardRange,
    /// `(offset, len)` of the ROWS body inside the mapping, bounds-checked
    /// at map time.
    rows_span: (usize, usize),
    /// Stored FNV-1a checksum the body must hash to.
    rows_ck: u64,
    /// First-access verification outcome; `Err` is cached too, so a
    /// corrupt shard is rejected identically on every access.
    rows: OnceLock<Result<Vec<SourceProfiles>, ArtifactError>>,
}

impl MappedShard {
    /// Set-level identity from the shard header.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The contiguous source range this shard covers.
    pub fn range(&self) -> ShardRange {
        self.range
    }

    /// Whether the bytes are a live mapping (vs the buffered fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// The decoded rows, verifying the ROWS checksum and every frontier
    /// on the first call. `rows()[i]` is source `range.begin + i`.
    pub fn rows(&self) -> Result<&[SourceProfiles], ArtifactError> {
        let outcome = self.rows.get_or_init(|| {
            let (off, len) = self.rows_span;
            let body = &self.map.as_slice()[off..off + len];
            crate::BYTES_READ.add(len as u64);
            if fnv1a64(body) != self.rows_ck {
                crate::REJECTS.inc();
                return Err(ArtifactError::ChecksumMismatch {
                    what: "ROWS section",
                });
            }
            match decode_rows(body, &self.meta, &self.range) {
                Ok(rows) => Ok(rows),
                Err(e) => {
                    crate::REJECTS.inc();
                    Err(e)
                }
            }
        });
        match outcome {
            Ok(rows) => Ok(rows),
            Err(e) => Err(e.clone()),
        }
    }

    /// The rows if this shard has already been verified successfully;
    /// `None` when verification has not run yet (or failed). Never
    /// triggers verification — the cheap path for stats.
    pub fn materialized_rows(&self) -> Option<&[SourceProfiles]> {
        match self.rows.get() {
            Some(Ok(rows)) => Some(rows),
            _ => None,
        }
    }
}

/// Maps one shard file and validates its header and section extents;
/// ROWS content verification is deferred to [`MappedShard::rows`].
pub fn map_shard(path: &Path) -> Result<MappedShard, ArtifactError> {
    match map_shard_inner(path) {
        Ok(s) => {
            crate::LOADS.inc();
            Ok(s)
        }
        Err(e) => {
            crate::REJECTS.inc();
            Err(e)
        }
    }
}

fn map_shard_inner(path: &Path) -> Result<MappedShard, ArtifactError> {
    let map = Mmap::map(path).map_err(|source| ArtifactError::Io {
        context: "cannot map artifact shard",
        path: PathBuf::from(path),
        source,
    })?;
    let file = map.as_slice();
    let (meta, range, sections, header_len) = crate::format::parse_header(file)?;
    let mut offset = header_len;
    let mut rows_span: Option<((usize, usize), u64)> = None;
    for (id, len, ck) in sections {
        let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated {
            context: "section body",
        })?;
        // `checked_add`: a corrupt header can claim a length near
        // `usize::MAX`, and a wrapped sum would pass the bounds check.
        let end = offset.checked_add(len).ok_or(ArtifactError::Truncated {
            context: "section body",
        })?;
        if end > file.len() {
            return Err(ArtifactError::Truncated {
                context: "section body",
            });
        }
        if id == SECTION_ROWS {
            rows_span = Some(((offset, len), ck));
        }
        // Unknown sections are additive extensions: skip, don't reject.
        offset = end;
    }
    let (span, rows_ck) = rows_span.ok_or(ArtifactError::Corrupt {
        context: "no ROWS section",
    })?;
    Ok(MappedShard {
        map,
        meta,
        range,
        rows_span: span,
        rows_ck,
        rows: OnceLock::new(),
    })
}

/// A mapped set: every shard's header verified and cross-checked at map
/// time, row content verified lazily per shard. Shards are ordered by
/// source range; gaps are allowed (a partial set still answers queries
/// whose sources it covers).
#[derive(Debug)]
pub struct MappedSet {
    /// The metadata every shard header agreed on.
    pub meta: ArtifactMeta,
    shards: Vec<MappedShard>,
}

impl MappedSet {
    /// The profile row for `source`: `Ok(None)` when no mapped shard
    /// covers it, `Err` when the covering shard fails its (first)
    /// verification.
    pub fn row(&self, source: u32) -> Result<Option<&SourceProfiles>, ArtifactError> {
        let si = self.shards.partition_point(|s| s.range.end <= source);
        let Some(s) = self.shards.get(si) else {
            return Ok(None);
        };
        if source < s.range.begin {
            return Ok(None);
        }
        Ok(s.rows()?.get((source - s.range.begin) as usize))
    }

    /// Total rows covered by the mapped shards (from the headers — never
    /// triggers row verification).
    pub fn num_rows(&self) -> usize {
        self.shards
            .iter()
            .map(|s| (s.range.end - s.range.begin) as usize)
            .sum()
    }

    /// The mapped shards, ascending by source range.
    pub fn shards(&self) -> &[MappedShard] {
        &self.shards
    }
}

/// Maps every `.omna` file under `dir` (sorted by file name) into a
/// cross-checked [`MappedSet`]. Cold-start cost is header pages only;
/// row bytes fault in per shard on first query.
pub fn map_set(dir: &Path) -> Result<MappedSet, ArtifactError> {
    let entries = std::fs::read_dir(dir).map_err(|source| ArtifactError::Io {
        context: "cannot read artifact directory",
        path: PathBuf::from(dir),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| ArtifactError::Io {
            context: "cannot read artifact directory entry",
            path: PathBuf::from(dir),
            source,
        })?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "omna") {
            paths.push(path);
        }
    }
    paths.sort();
    if paths.is_empty() {
        return Err(ArtifactError::SetInconsistent {
            context: format!("no .omna shards in {}", dir.display()),
        });
    }
    let mut shards: Vec<MappedShard> = Vec::with_capacity(paths.len());
    for path in &paths {
        shards.push(map_shard(path)?);
    }
    shards.sort_by_key(|s| s.range.begin);
    let meta = shards[0].meta.clone();
    let count = shards[0].range.count;
    for (i, s) in shards.iter().enumerate() {
        if s.meta != meta {
            return Err(ArtifactError::SetInconsistent {
                context: format!(
                    "shard {} metadata disagrees with the set (dataset {:?} vs {:?})",
                    s.range.index, s.meta.dataset_key, meta.dataset_key
                ),
            });
        }
        if s.range.count != count {
            return Err(ArtifactError::SetInconsistent {
                context: format!(
                    "shard {} claims {} total shards, set leader claims {count}",
                    s.range.index, s.range.count
                ),
            });
        }
        if i > 0 && shards[i - 1].range.end > s.range.begin {
            return Err(ArtifactError::SetInconsistent {
                context: format!("shard ranges overlap at source {}", s.range.begin),
            });
        }
    }
    Ok(MappedSet { meta, shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{load_shard, write_set};
    use omnet_core::{AllPairsProfiles, ProfileOptions};
    use omnet_temporal::TraceBuilder;

    fn toy_set(tag: &str, shards: u32) -> (PathBuf, Vec<PathBuf>, ArtifactMeta) {
        let t = TraceBuilder::new()
            .num_nodes(6)
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(1, 2, 20.0, 30.0)
            .contact_secs(2, 3, 40.0, 50.0)
            .contact_secs(3, 4, 60.0, 70.0)
            .contact_secs(4, 5, 80.0, 90.0)
            .build();
        let opts = ProfileOptions::default();
        let all = AllPairsProfiles::compute(&t, opts);
        let meta = ArtifactMeta {
            dataset_key: "mapped".into(),
            num_nodes: 6,
            num_internal: 6,
            window: t.span(),
            options: opts,
        };
        let dir = std::env::temp_dir().join(format!("omna-mapped-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let paths = write_set(&dir, "mapped", &meta, all.rows(), shards).unwrap();
        (dir, paths, meta)
    }

    #[test]
    fn mapped_rows_equal_buffered_rows() {
        let (dir, paths, meta) = toy_set("eq", 3);
        let set = map_set(&dir).unwrap();
        assert_eq!(set.meta, meta);
        assert_eq!(set.num_rows(), 6);
        for path in &paths {
            let buffered = load_shard(path).unwrap();
            let mapped = map_shard(path).unwrap();
            let rows = mapped.rows().unwrap();
            assert_eq!(rows.len(), buffered.rows.len());
            for (m, b) in rows.iter().zip(&buffered.rows) {
                assert_eq!(m.to_parts(), b.to_parts());
            }
        }
        for s in 0..6u32 {
            assert!(set.row(s).unwrap().is_some(), "source {s} covered");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verification_is_lazy_and_cached() {
        let (dir, _, _) = toy_set("lazy", 2);
        let set = map_set(&dir).unwrap();
        for s in set.shards() {
            assert!(s.materialized_rows().is_none(), "rows decoded eagerly");
        }
        // Touch one source: only its shard materializes.
        assert!(set.row(0).unwrap().is_some());
        let done: usize = set
            .shards()
            .iter()
            .filter(|s| s.materialized_rows().is_some())
            .count();
        assert_eq!(done, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn body_corruption_rejected_at_first_access_every_time() {
        let (dir, paths, _) = toy_set("corrupt", 1);
        let good = std::fs::read(&paths[0]).unwrap();
        let mut bad = good.clone();
        let i = bad.len() - 16;
        bad[i] ^= 0x01;
        std::fs::write(&paths[0], &bad).unwrap();
        // Header parses (the flip is in the body), so the map succeeds...
        let shard = map_shard(&paths[0]).unwrap();
        // ...and the rows are rejected on first access and every access
        // after (the outcome is cached).
        for _ in 0..2 {
            assert!(matches!(
                shard.rows(),
                Err(ArtifactError::ChecksumMismatch { .. })
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gaps_answer_none_like_the_buffered_set() {
        let (dir, paths, _) = toy_set("gap", 3);
        std::fs::remove_file(&paths[1]).unwrap();
        let set = map_set(&dir).unwrap();
        assert!(set.row(0).unwrap().is_some());
        assert!(set.row(2).unwrap().is_none());
        assert!(set.row(5).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
