//! Writing and loading one shard file.

use crate::codec::{fnv1a64, Reader, Writer};
use crate::format::{encode_header, parse_header, ArtifactMeta, ShardRange, SECTION_ROWS};
use crate::{ArtifactError, BYTES_READ, BYTES_WRITTEN, LOADS, REJECTS, WRITES};
use omnet_core::{SourceProfileParts, SourceProfiles};
use omnet_temporal::{LdEa, NodeId, Time};
use std::path::{Path, PathBuf};

/// One loaded, verified shard: its metadata, source range, and
/// reconstructed profile rows (ascending sources `range.begin..range.end`).
#[derive(Debug, Clone)]
pub struct ShardArtifact {
    /// Set-level identity carried in the shard header.
    pub meta: ArtifactMeta,
    /// The contiguous source range this shard covers.
    pub range: ShardRange,
    /// Reconstructed rows, `rows[i]` for source `range.begin + i`.
    pub rows: Vec<SourceProfiles>,
}

fn encode_run(w: &mut Writer, run: &[(u32, Box<[LdEa]>)]) {
    w.u32(run.len() as u32);
    for (dest, pairs) in run {
        w.u32(*dest);
        w.u32(pairs.len() as u32);
        for p in pairs.iter() {
            w.f64_bits(p.ld.as_secs());
            w.f64_bits(p.ea.as_secs());
        }
    }
}

/// One hop level's additions: `(dest, new frontier pairs)` entries.
type Run = Vec<(u32, Box<[LdEa]>)>;

fn decode_run(r: &mut Reader<'_>) -> Result<Run, ArtifactError> {
    let entries = r.u32("run entry count")? as usize;
    if entries.saturating_mul(8) > r.remaining() {
        return Err(ArtifactError::Truncated {
            context: "run entries",
        });
    }
    let mut run = Vec::with_capacity(entries);
    for _ in 0..entries {
        let dest = r.u32("run destination")?;
        let npairs = r.u32("run pair count")? as usize;
        if npairs.saturating_mul(16) > r.remaining() {
            return Err(ArtifactError::Truncated {
                context: "run pairs",
            });
        }
        let mut pairs = Vec::with_capacity(npairs);
        for _ in 0..npairs {
            let ld = Time::secs(r.f64_bits("pair ld")?);
            let ea = Time::secs(r.f64_bits("pair ea")?);
            pairs.push(LdEa { ld, ea });
        }
        run.push((dest, pairs.into_boxed_slice()));
    }
    Ok(run)
}

/// Serializes the ROWS section body for `rows`.
fn encode_rows(rows: &[SourceProfiles]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(rows.len() as u32);
    for row in rows {
        let parts = row.to_parts();
        w.u32(parts.source.0);
        w.u32(parts.converged_at);
        w.u8(parts.converged as u8);
        w.u32(parts.levels.len() as u32);
        for level in &parts.levels {
            encode_run(&mut w, level);
        }
        encode_run(&mut w, &parts.tail);
    }
    w.into_vec()
}

/// Decodes and validates the ROWS section body, reconstructing each row
/// through [`SourceProfiles::from_parts`] (which re-checks every frontier).
/// Shared by the buffered loader here and the lazy mapped loader
/// ([`crate::mapped`]), so both decode byte-identically.
pub(crate) fn decode_rows(
    body: &[u8],
    meta: &ArtifactMeta,
    range: &ShardRange,
) -> Result<Vec<SourceProfiles>, ArtifactError> {
    let mut r = Reader::new(body);
    let count = r.u32("row count")?;
    if count != range.end - range.begin {
        return Err(ArtifactError::Corrupt {
            context: "row count does not match shard range",
        });
    }
    let mut rows = Vec::with_capacity(count as usize);
    for i in 0..count {
        let source = r.u32("row source")?;
        if source != range.begin + i {
            return Err(ArtifactError::Corrupt {
                context: "row sources out of order",
            });
        }
        let converged_at = r.u32("row converged_at")?;
        let converged = match r.u8("row converged flag")? {
            0 => false,
            1 => true,
            _ => {
                return Err(ArtifactError::Corrupt {
                    context: "converged flag is not 0 or 1",
                })
            }
        };
        let level_count = r.u32("row level count")? as usize;
        if level_count.saturating_mul(4) > r.remaining() {
            return Err(ArtifactError::Truncated { context: "levels" });
        }
        let mut levels = Vec::with_capacity(level_count);
        for _ in 0..level_count {
            levels.push(decode_run(&mut r)?);
        }
        let tail = decode_run(&mut r)?;
        let parts = SourceProfileParts {
            source: NodeId(source),
            num_nodes: meta.num_nodes,
            converged_at,
            converged,
            levels,
            tail,
        };
        rows.push(SourceProfiles::from_parts(
            parts,
            meta.options.level_storage,
        )?);
    }
    if r.remaining() != 0 {
        return Err(ArtifactError::Corrupt {
            context: "trailing bytes after last row",
        });
    }
    Ok(rows)
}

/// Writes one shard file covering `range` with the given `rows`; returns
/// the number of bytes written. The output is byte-deterministic: the same
/// rows, metadata, and range always produce the identical file.
pub fn write_shard(
    path: &Path,
    meta: &ArtifactMeta,
    range: ShardRange,
    rows: &[SourceProfiles],
) -> Result<u64, ArtifactError> {
    if rows.len() as u32 != range.end - range.begin {
        return Err(ArtifactError::Corrupt {
            context: "row count does not match shard range",
        });
    }
    for (i, row) in rows.iter().enumerate() {
        if row.source().0 != range.begin + i as u32 || row.num_nodes() as u32 != meta.num_nodes {
            return Err(ArtifactError::Corrupt {
                context: "rows must be ascending sources of the shard range",
            });
        }
    }
    let body = encode_rows(rows);
    let sections = [(SECTION_ROWS, body.len() as u64, fnv1a64(&body))];
    let mut file = encode_header(meta, &range, &sections)?;
    file.extend_from_slice(&body);
    let total = file.len() as u64;
    std::fs::write(path, &file).map_err(|source| ArtifactError::Io {
        context: "cannot write artifact shard",
        path: PathBuf::from(path),
        source,
    })?;
    WRITES.inc();
    BYTES_WRITTEN.add(total);
    Ok(total)
}

/// Loads and fully verifies one shard file: header magic, version, and
/// checksum; section checksums; and every decoded frontier. Never runs the
/// §4.4 induction.
pub fn load_shard(path: &Path) -> Result<ShardArtifact, ArtifactError> {
    match load_shard_inner(path) {
        Ok(s) => {
            LOADS.inc();
            Ok(s)
        }
        Err(e) => {
            REJECTS.inc();
            Err(e)
        }
    }
}

fn load_shard_inner(path: &Path) -> Result<ShardArtifact, ArtifactError> {
    let file = std::fs::read(path).map_err(|source| ArtifactError::Io {
        context: "cannot read artifact shard",
        path: PathBuf::from(path),
        source,
    })?;
    BYTES_READ.add(file.len() as u64);
    let (meta, range, sections, header_len) = parse_header(&file)?;
    let mut offset = header_len;
    let mut rows: Option<Vec<SourceProfiles>> = None;
    for (id, len, ck) in sections {
        let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated {
            context: "section body",
        })?;
        // `checked_add`: a corrupt header can claim a section length near
        // `usize::MAX`; the unchecked sum wraps in release builds and a
        // wrapped `offset + len` would pass the bounds check below, turning
        // the slice below into an out-of-bounds panic instead of a typed
        // rejection.
        let end = offset.checked_add(len).ok_or(ArtifactError::Truncated {
            context: "section body",
        })?;
        if end > file.len() {
            return Err(ArtifactError::Truncated {
                context: "section body",
            });
        }
        let body = &file[offset..end];
        offset = end;
        if id != SECTION_ROWS {
            // Unknown sections are additive extensions: skip, don't reject.
            continue;
        }
        if fnv1a64(body) != ck {
            return Err(ArtifactError::ChecksumMismatch {
                what: "ROWS section",
            });
        }
        rows = Some(decode_rows(body, &meta, &range)?);
    }
    let rows = rows.ok_or(ArtifactError::Corrupt {
        context: "no ROWS section",
    })?;
    Ok(ShardArtifact { meta, range, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnet_core::{AllPairsProfiles, HopBound, ProfileOptions};
    use omnet_temporal::TraceBuilder;

    fn toy() -> (omnet_temporal::Trace, ArtifactMeta) {
        let t = TraceBuilder::new()
            .contact_secs(0, 1, 0.0, 10.0)
            .contact_secs(1, 2, 20.0, 30.0)
            .contact_secs(2, 3, 40.0, 50.0)
            .contact_secs(0, 3, 800.0, 920.0)
            .build();
        let meta = ArtifactMeta {
            dataset_key: "toy".into(),
            num_nodes: t.num_nodes(),
            num_internal: t.num_internal(),
            window: t.span(),
            options: ProfileOptions::default(),
        };
        (t, meta)
    }

    #[test]
    fn shard_roundtrip_semantics() {
        let (t, meta) = toy();
        let rows = AllPairsProfiles::compute(&t, meta.options).into_rows();
        let dir = std::env::temp_dir().join(format!("omna-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omna");
        let range = ShardRange {
            index: 0,
            count: 1,
            begin: 0,
            end: 4,
        };
        write_shard(&path, &meta, range, &rows).unwrap();
        let loaded = load_shard(&path).unwrap();
        assert_eq!(loaded.meta, meta);
        assert_eq!(loaded.range, range);
        for (orig, back) in rows.iter().zip(&loaded.rows) {
            for d in 0..4u32 {
                for k in 0..=5usize {
                    assert_eq!(
                        back.profile(NodeId(d), HopBound::AtMost(k)).pairs(),
                        orig.profile(NodeId(d), HopBound::AtMost(k)).pairs()
                    );
                }
                assert_eq!(
                    back.profile(NodeId(d), HopBound::Unlimited).pairs(),
                    orig.profile(NodeId(d), HopBound::Unlimited).pairs()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_are_byte_deterministic() {
        let (t, meta) = toy();
        let rows = AllPairsProfiles::compute(&t, meta.options).into_rows();
        let rows2 = AllPairsProfiles::compute(&t, meta.options).into_rows();
        let dir = std::env::temp_dir().join(format!("omna-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.omna"), dir.join("b.omna"));
        let range = ShardRange {
            index: 0,
            count: 1,
            begin: 0,
            end: 4,
        };
        write_shard(&p1, &meta, range, &rows).unwrap();
        write_shard(&p2, &meta, range, &rows2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn body_corruption_rejected() {
        let (t, meta) = toy();
        let rows = AllPairsProfiles::compute(&t, meta.options).into_rows();
        let dir = std::env::temp_dir().join(format!("omna-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omna");
        let range = ShardRange {
            index: 0,
            count: 1,
            begin: 0,
            end: 4,
        };
        write_shard(&path, &meta, range, &rows).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one bit in the last 32 bytes (well inside the ROWS body).
        let mut bad = good.clone();
        let i = bad.len() - 16;
        bad[i] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_shard(&path),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));

        // Truncate the body.
        std::fs::write(&path, &good[..good.len() - 10]).unwrap();
        assert!(matches!(
            load_shard(&path),
            Err(ArtifactError::Truncated { .. })
        ));

        // Interior corruption caught even if the checksum is recomputed:
        // swap two pair fields and fix up the section checksum — the
        // frontier validation still rejects.
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: a corrupt section-table length near `u64::MAX` used to
    /// wrap the `offset + len` bounds check in release builds and panic on
    /// the body slice instead of returning a typed rejection. The header
    /// checksum is fixed up after the patch so the corrupt length actually
    /// reaches the section walk in both loaders.
    #[test]
    fn huge_section_length_rejected_not_panicking() {
        let (t, meta) = toy();
        let rows = AllPairsProfiles::compute(&t, meta.options).into_rows();
        let dir = std::env::temp_dir().join(format!("omna-huge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omna");
        let range = ShardRange {
            index: 0,
            count: 1,
            begin: 0,
            end: 4,
        };
        write_shard(&path, &meta, range, &rows).unwrap();
        let mut file = std::fs::read(&path).unwrap();
        let header_len = u32::from_le_bytes(file[12..16].try_into().unwrap()) as usize;
        // Single-section table: trailing ck (8) + one entry (20); the len
        // field sits 4 bytes into the entry.
        let len_at = header_len - 8 - 20 + 4;
        file[len_at..len_at + 8].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        let ck = fnv1a64(&file[..header_len - 8]);
        file[header_len - 8..header_len].copy_from_slice(&ck.to_le_bytes());
        std::fs::write(&path, &file).unwrap();
        assert!(matches!(
            load_shard(&path),
            Err(ArtifactError::Truncated { .. })
        ));
        // The mapped loader walks the same table at map time.
        assert!(matches!(
            crate::mapped::map_shard(&path),
            Err(ArtifactError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression companion: a file cut mid-body (truncated tail) is a
    /// typed `Truncated` from both the buffered and the mapped loader —
    /// the mapped path must catch it at map time, before any row access.
    #[test]
    fn truncated_tail_rejected_by_both_loaders() {
        let (t, meta) = toy();
        let rows = AllPairsProfiles::compute(&t, meta.options).into_rows();
        let dir = std::env::temp_dir().join(format!("omna-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.omna");
        let range = ShardRange {
            index: 0,
            count: 1,
            begin: 0,
            end: 4,
        };
        write_shard(&path, &meta, range, &rows).unwrap();
        let good = std::fs::read(&path).unwrap();
        for cut in [1usize, 10, good.len() / 2] {
            std::fs::write(&path, &good[..good.len() - cut]).unwrap();
            let buffered = load_shard(&path);
            let mapped = crate::mapped::map_shard(&path);
            match buffered {
                Err(ArtifactError::Truncated { .. }) => assert!(
                    matches!(mapped, Err(ArtifactError::Truncated { .. })),
                    "loaders disagree at cut {cut}"
                ),
                other => panic!("cut {cut} not rejected as truncated: {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
