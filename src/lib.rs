//! # opportunistic-diameter
//!
//! A from-scratch Rust reproduction of Chaintreau, Mtibaa, Massoulié & Diot,
//! *The Diameter of Opportunistic Mobile Networks* (CoNEXT 2007): temporal
//! networks, exhaustive delay-optimal path computation, the (1−ε)-diameter,
//! the random-temporal-network phase transition, synthetic stand-ins for the
//! four mobility data sets, and the full experiment harness regenerating
//! every table and figure.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`temporal`] | time, contacts, traces, LD/EA sequence algebra, stats, transforms, I/O |
//! | [`core`] | delivery functions, all-pairs hop-bounded profiles, diameter, Dijkstra |
//! | [`random`] | §3 models, phase-transition theory, Monte Carlo |
//! | [`mobility`] | calibrated synthetic traces (Infocom05/06, Hong-Kong, Reality Mining) |
//! | [`flooding`] | epidemic simulator, Zhang baseline, forwarding schemes |
//! | [`analysis`] | ECDF/CCDF, grids, tables, parallel map |
//!
//! ## Quickstart
//!
//! ```
//! use opportunistic_diameter::prelude::*;
//!
//! // Generate a (shortened) synthetic Infocom05 conference trace…
//! let trace = Dataset::Infocom05.generate_days(0.5, 7);
//!
//! // …compute the exact success curves for hop classes 1..=12 and flooding…
//! let grid = log_grid(120.0, 43_200.0, 24)
//!     .into_iter()
//!     .map(Dur::secs)
//!     .collect();
//! let curves = SuccessCurves::compute(&trace, &CurveOptions::standard(12, grid));
//!
//! // …and read off the 99%-diameter.
//! let diameter = curves.diameter(0.01);
//! assert!(diameter.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use omnet_analysis as analysis;
pub use omnet_core as core;
pub use omnet_flooding as flooding;
pub use omnet_mobility as mobility;
pub use omnet_random as random;
pub use omnet_temporal as temporal;

/// The most commonly used items, for glob import.
///
/// Builds on [`omnet_core::prelude`] (profile engine, diameter, temporal
/// vocabulary) and adds the workspace's model, mobility, flooding, and
/// analysis entry points.
pub mod prelude {
    pub use omnet_analysis::{linear_grid, log_grid, Ccdf, Ecdf, Series, Summary, Table};
    pub use omnet_core::prelude::*;
    pub use omnet_flooding::{flood, ZhangProfile};
    pub use omnet_mobility::{Dataset, MobilitySpec, Schedule};
    pub use omnet_random::{ContactCase, ContinuousModel, DiscreteModel};
}
