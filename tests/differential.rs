//! Differential harness: the three path engines cross-checked on
//! randomized traces with invariant checking live.
//!
//! The production §4.4 induction (`omnet_core::algorithm`), the
//! exponential enumeration oracle (`omnet_core::bruteforce`) and the
//! time-dependent Dijkstra (`omnet_core::dijkstra`) implement the same
//! mathematical object three independent ways. This harness generates
//! randomized small traces and demands bit-exact agreement through
//! [`omnet_core::cross_check`], with structural invariants
//! (`Trace::validate`, `ContactSeq::validate`, `DeliveryFunction::validate`)
//! re-verified along the way. Run with `--features strict-invariants` the
//! same checks stay active in release builds — that is the CI
//! `strict-invariants` job.

use omnet_core::{
    cross_check, AllPairsProfiles, ArcPruning, Arcs, ContactDelta, CrossCheckOptions, HopBound,
    IncrementalProfiles, LevelStorage, ProfileOptions, SourceProfiles,
};
use omnet_temporal::invariant::{self, InvariantViolation};
use omnet_temporal::{Contact, ContactSeq, NodeId, Time, Trace, TraceBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random small trace: up to `max_nodes` devices, `max_contacts`
/// contacts with start times in `[0, horizon)`.
fn random_trace(
    rng: &mut StdRng,
    max_nodes: u32,
    max_contacts: usize,
    horizon: f64,
) -> omnet_temporal::Trace {
    let n = rng.gen_range(3..=max_nodes);
    let m = rng.gen_range(1..=max_contacts);
    let mut b = TraceBuilder::new().num_nodes(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let start = rng.gen_range(0.0..horizon);
        let dur = rng.gen_range(0.0..horizon / 4.0);
        b.push(Contact::secs(u, v, start, start + dur));
    }
    b.build()
}

#[test]
fn engines_agree_on_randomized_traces() {
    let mut rng = StdRng::seed_from_u64(0x5EED_D1FF);
    for round in 0..40 {
        let trace = random_trace(&mut rng, 6, 9, 400.0);
        trace.validate().expect("builder output must validate");
        let starts = (0..4)
            .map(|_| Time::secs(rng.gen_range(0.0..500.0)))
            .collect();
        let opts = CrossCheckOptions {
            hop_classes: vec![1, 2, 3, 4],
            starts,
            max_divergences: 4,
        };
        let divergences = cross_check(&trace, &opts);
        assert!(
            divergences.is_empty(),
            "round {round}: engines diverged on {trace:?}:\n{}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn larger_sparse_traces_agree_with_dijkstra_only() {
    // Brute force is exponential, so bigger rounds check only the
    // profile-vs-Dijkstra axis (plus frontier validity).
    let mut rng = StdRng::seed_from_u64(0xD1FF_5EED);
    for round in 0..10 {
        let trace = random_trace(&mut rng, 15, 40, 2_000.0);
        trace.validate().expect("builder output must validate");
        let starts = (0..3)
            .map(|_| Time::secs(rng.gen_range(0.0..2_500.0)))
            .collect();
        let opts = CrossCheckOptions {
            hop_classes: Vec::new(),
            starts,
            max_divergences: 4,
        };
        let divergences = cross_check(&trace, &opts);
        assert!(
            divergences.is_empty(),
            "round {round}: engines diverged:\n{}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn planted_unsorted_trace_is_caught() {
    // `TraceBuilder` always sorts, so an unsorted contact vector can only
    // be probed through the raw-parts checker — exactly what `Trace::
    // validate` runs internally. Plant the violation and demand a typed
    // report.
    let contacts = [
        Contact::secs(1, 2, 50.0, 60.0),
        Contact::secs(0, 1, 0.0, 10.0), // starts before its predecessor
    ];
    let got = invariant::validate_trace_parts(
        3,
        3,
        omnet_temporal::Interval::secs(0.0, 100.0),
        &contacts,
    );
    assert_eq!(got, Err(InvariantViolation::UnsortedContacts { index: 1 }));

    // And the frontier checker catches a planted condition-(4) violation.
    let bad = [
        omnet_temporal::LdEa {
            ld: Time::secs(10.0),
            ea: Time::secs(5.0),
        },
        omnet_temporal::LdEa {
            ld: Time::secs(20.0),
            ea: Time::secs(4.0), // EA must strictly increase
        },
    ];
    assert_eq!(
        invariant::validate_frontier(&bad),
        Err(InvariantViolation::FrontierOrder { index: 1 })
    );
}

#[test]
fn sequence_validation_matches_is_valid_on_random_chains() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut validated = 0u32;
    for _ in 0..200 {
        let trace = random_trace(&mut rng, 5, 6, 200.0);
        // Random walks over the contact list, valid or not.
        let origin = NodeId(rng.gen_range(0..trace.num_nodes()));
        let take = rng.gen_range(0..=trace.num_contacts());
        let hops: Vec<Contact> = trace.contacts()[..take].to_vec();
        match ContactSeq::build(origin, &hops) {
            Some(seq) => {
                seq.validate().expect("constructed sequence must validate");
                assert!(seq.is_valid());
                validated += 1;
            }
            None => {
                // The raw-parts checker must agree that something is wrong.
                assert!(
                    invariant::validate_sequence_parts(origin, &hops).is_err(),
                    "build refused a chain the checker accepts: {hops:?}"
                );
            }
        }
    }
    assert!(validated > 0, "no valid chains sampled at all");
}

// In dev-profile tests enforcement is always on via debug_assertions; with
// `--features strict-invariants` it also holds in release builds. In a plain
// release test build there is nothing to observe, so the test is gated out.
#[test]
#[cfg(any(debug_assertions, feature = "strict-invariants"))]
#[should_panic(expected = "structural invariant violated")]
fn enforce_aborts_on_planted_violation() {
    invariant::enforce(|| Err(InvariantViolation::InternalExceedsUniverse));
}

/// Strategy: a random small trace for engine-vs-specification runs.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        3u32..7,
        prop::collection::vec((0u32..7, 0u32..7, 0u32..400, 1u32..100), 1..12),
    )
        .prop_map(|(n, rows)| {
            let mut b = TraceBuilder::new().num_nodes(n);
            for (u, v, start, dur) in rows {
                let (u, v) = (u % n, v % n);
                if u == v {
                    continue;
                }
                b.push(Contact::secs(u, v, start as f64, (start + dur) as f64));
            }
            b.build()
        })
}

/// Every `ProfileOptions` knob combination, plus a truncated-storage variant
/// that exercises the beyond-stored-levels fallback.
fn knob_combos() -> Vec<ProfileOptions> {
    let mut combos = Vec::new();
    for pruning in [ArcPruning::Exhaustive, ArcPruning::TimeIndexed] {
        for storage in [LevelStorage::FullClones, LevelStorage::Deltas] {
            combos.push(
                ProfileOptions::builder()
                    .arc_pruning(pruning)
                    .level_storage(storage)
                    .build(),
            );
            combos.push(
                ProfileOptions::builder()
                    .store_levels(2)
                    .arc_pruning(pruning)
                    .level_storage(storage)
                    .build(),
            );
        }
    }
    combos
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimized induction (delta propagation + arc pruning + pooled
    /// buffers + either level-storage shape) is pair-for-pair identical to
    /// the naive full-re-extension specification, for every knob
    /// combination, every source, and every hop bound.
    #[test]
    fn optimized_engine_matches_naive_spec_on_all_knobs(trace in trace_strategy()) {
        let arcs = Arcs::of(&trace);
        for opts in knob_combos() {
            for s in trace.nodes() {
                let fast = SourceProfiles::compute(&trace, &arcs, s, opts);
                let naive = SourceProfiles::compute_naive(&trace, &arcs, s, opts);
                prop_assert_eq!(
                    fast.converged_at(),
                    naive.converged_at(),
                    "convergence level diverged for source {} with {:?}",
                    s,
                    opts
                );
                for d in trace.nodes() {
                    for k in 0..=6usize {
                        let f = fast.profile(d, HopBound::AtMost(k));
                        let g = naive.profile(d, HopBound::AtMost(k));
                        prop_assert_eq!(
                            f.pairs(),
                            g.pairs(),
                            "{}->{} diverged at k={} with {:?}",
                            s,
                            d,
                            k,
                            opts
                        );
                    }
                    let f = fast.profile(d, HopBound::Unlimited);
                    let g = naive.profile(d, HopBound::Unlimited);
                    prop_assert_eq!(
                        f.pairs(),
                        g.pairs(),
                        "{}->{} diverged unbounded with {:?}",
                        s,
                        d,
                        opts
                    );
                }
            }
        }
    }

    /// Delta-reconstructed level queries equal the old full-clone snapshots
    /// on every stored (and every fallback) hop class.
    #[test]
    fn delta_reconstruction_matches_full_clone_snapshots(trace in trace_strategy()) {
        let arcs = Arcs::of(&trace);
        for pruning in [ArcPruning::Exhaustive, ArcPruning::TimeIndexed] {
            let full_opts = ProfileOptions::builder()
                .arc_pruning(pruning)
                .level_storage(LevelStorage::FullClones)
                .build();
            let delta_opts = ProfileOptions::builder()
                .arc_pruning(pruning)
                .level_storage(LevelStorage::Deltas)
                .build();
            for s in trace.nodes() {
                let full = SourceProfiles::compute(&trace, &arcs, s, full_opts);
                let delta = SourceProfiles::compute(&trace, &arcs, s, delta_opts);
                prop_assert_eq!(full.stored_levels(), delta.stored_levels());
                for d in trace.nodes() {
                    for k in 0..=full.stored_levels() + 2 {
                        let f = full.profile(d, HopBound::AtMost(k));
                        let g = delta.profile(d, HopBound::AtMost(k));
                        prop_assert_eq!(
                            f.pairs(),
                            g.pairs(),
                            "{}->{} diverged at k={} ({:?})",
                            s,
                            d,
                            k,
                            pruning
                        );
                    }
                }
            }
        }
    }

    /// The flat CSR arc index is row-for-row identical to the per-node-Vec
    /// reference it replaced: same `leaving` rows (sorted by interval end),
    /// a contact-id column that maps every arc back to its generating
    /// contact, and the same `boardable` suffix at every interesting
    /// threshold (±∞ and every contact endpoint, exactly and perturbed).
    #[test]
    fn csr_arc_index_matches_per_node_vec_reference(trace in trace_strategy()) {
        let arcs = Arcs::of(&trace);
        let n = trace.num_nodes();
        prop_assert_eq!(arcs.num_nodes(), n as usize);
        prop_assert_eq!(arcs.num_arcs(), 2 * trace.num_contacts());

        // the replaced nested-Vec build, reconstructed contact by contact
        let mut reference: Vec<Vec<(u32, omnet_temporal::Interval, u32)>> =
            vec![Vec::new(); n as usize];
        for (i, c) in trace.contacts().iter().enumerate() {
            reference[c.a.index()].push((c.b.0, c.interval, i as u32));
            reference[c.b.index()].push((c.a.0, c.interval, i as u32));
        }
        for row in &mut reference {
            row.sort_unstable_by_key(|&(head, iv, cid)| (iv.end, iv.start, head, cid));
        }

        let mut thresholds = vec![Time::NEG_INF, Time::INF, Time::ZERO];
        for c in trace.contacts() {
            for t in [c.start(), c.end()] {
                thresholds.push(t);
                thresholds.push(t + omnet_temporal::Dur::secs(0.125));
                thresholds.push(t - omnet_temporal::Dur::secs(0.125));
            }
        }

        for node in trace.nodes() {
            let row = arcs.leaving(node);
            let cids = arcs.leaving_contacts(node);
            let expect = &reference[node.index()];
            prop_assert_eq!(row.len(), expect.len(), "row length at {}", node);
            prop_assert_eq!(cids.len(), expect.len(), "cid column at {}", node);
            for (i, (&(head, iv), &cid)) in row.iter().zip(cids).enumerate() {
                prop_assert_eq!((head, iv, cid.0), expect[i], "arc {} of {}", i, node);
                let c = trace.contact(cid);
                prop_assert_eq!(c.interval, iv);
                prop_assert!(
                    (c.a == node && c.b.0 == head) || (c.b == node && c.a.0 == head),
                    "contact id column points at a non-incident contact"
                );
            }
            for &ea in &thresholds {
                let fast = arcs.boardable(node, ea);
                let cut = expect.partition_point(|&(_, iv, _)| iv.end < ea);
                prop_assert_eq!(
                    fast.len(),
                    expect.len() - cut,
                    "boardable at {:?} from {}",
                    ea,
                    node
                );
                if let Some(&(head, iv)) = fast.first() {
                    prop_assert_eq!((head, iv), (expect[cut].0, expect[cut].1));
                }
            }
        }
    }

    /// The streaming all-pairs walk (`map_range`, frontiers borrowed from
    /// worker scratch and recycled) observes exactly what the materializing
    /// path returns, for every knob combination: same unbounded frontiers,
    /// same reached sets, same convergence metadata.
    #[test]
    fn streamed_views_match_materialized_profiles(trace in trace_strategy()) {
        let n = trace.num_nodes();
        for opts in knob_combos() {
            let streamed = AllPairsProfiles::map_range(&trace, opts, 0..n, |view| {
                let frontiers: Vec<Vec<omnet_temporal::LdEa>> = (0..n)
                    .map(|d| view.frontier(NodeId(d)).pairs().to_vec())
                    .collect();
                let reached: Vec<NodeId> = view.reached().collect();
                (
                    view.source(),
                    frontiers,
                    reached,
                    view.converged_at(),
                    view.converged(),
                )
            });
            let materialized = AllPairsProfiles::compute(&trace, opts);
            prop_assert_eq!(streamed.len(), n as usize);
            for (s, (source, frontiers, reached, converged_at, converged)) in
                streamed.into_iter().enumerate()
            {
                let row = materialized.from_source(NodeId(s as u32));
                prop_assert_eq!(source, NodeId(s as u32));
                prop_assert_eq!(converged_at, row.converged_at(), "source {}", s);
                prop_assert_eq!(converged, row.converged(), "source {}", s);
                let mut expect_reached = Vec::new();
                for d in 0..n {
                    let expect = row.profile(NodeId(d), HopBound::Unlimited);
                    prop_assert_eq!(
                        frontiers[d as usize].as_slice(),
                        expect.pairs(),
                        "{}->{} with {:?}",
                        s,
                        d,
                        opts
                    );
                    if !expect.is_empty() {
                        expect_reached.push(NodeId(d));
                    }
                }
                prop_assert_eq!(reached, expect_reached, "reached set of {}", s);
            }
        }
    }

    /// The incremental engine's maintained rows are byte-identical (as
    /// `SourceProfileParts`) to a fresh batch compute of the merged trace
    /// after every step of a random append/remove delta sequence — with
    /// occasional overlay compactions interleaved — for every
    /// `ArcPruning × LevelStorage` knob combination.
    #[test]
    fn incremental_engine_matches_fresh_batch_after_delta_sequences(
        trace in trace_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        for opts in knob_combos() {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut engine = IncrementalProfiles::new(&trace, opts);
            for step in 0..4usize {
                let delta = random_delta(&mut rng, &engine);
                engine.apply(&delta);
                if rng.gen::<f64>() < 0.25 {
                    engine.compact();
                }
                let n = engine.trace().num_nodes();
                let fresh = AllPairsProfiles::compute_range(engine.trace(), opts, 0..n);
                prop_assert_eq!(engine.rows().len(), fresh.len());
                for (e, f) in engine.rows().iter().zip(&fresh) {
                    prop_assert_eq!(
                        e.to_parts(),
                        f.to_parts(),
                        "source {} diverged after step {} with {:?}",
                        e.source(),
                        step,
                        opts
                    );
                }
            }
        }
    }

    /// `compute_range` over any ordered partition of `0..n` — empty ranges
    /// included (duplicate cut points) — concatenates byte-identically to
    /// the whole-range `compute`, for every knob combination. This is the
    /// shard-boundary oracle: `omnet precompute` shards are independent
    /// `compute_range` calls.
    #[test]
    fn compute_range_partition_concats_to_compute(
        trace in trace_strategy(),
        cuts in prop::collection::vec(0u32..8, 0..4),
    ) {
        let n = trace.num_nodes();
        for opts in knob_combos() {
            let mut bounds: Vec<u32> = cuts.iter().map(|&c| c % (n + 1)).collect();
            bounds.sort_unstable();
            bounds.push(n);
            let whole = AllPairsProfiles::compute(&trace, opts);
            let mut cat: Vec<SourceProfiles> = Vec::new();
            let mut lo = 0u32;
            for &b in &bounds {
                cat.extend(AllPairsProfiles::compute_range(&trace, opts, lo..b));
                lo = b;
            }
            prop_assert_eq!(cat.len(), whole.rows().len());
            for (c, w) in cat.iter().zip(whole.rows()) {
                prop_assert_eq!(
                    c.to_parts(),
                    w.to_parts(),
                    "source {} diverged with {:?}",
                    w.source(),
                    opts
                );
            }
        }
    }
}

/// A random delta against the engine's current substrate: each live
/// contact tombstoned with probability 0.3 (occasionally with a duplicate
/// key thrown in), plus up to two appended contacts drawn inside the
/// observation window.
fn random_delta(rng: &mut StdRng, engine: &IncrementalProfiles) -> ContactDelta {
    let trace = engine.trace();
    let span = trace.span();
    let n = trace.num_nodes();
    let mut delta = ContactDelta::default();
    for (key, _) in engine.overlay().live() {
        if rng.gen::<f64>() < 0.3 {
            delta.remove.push(key);
        }
    }
    if let Some(&k) = delta.remove.first() {
        if rng.gen::<f64>() < 0.5 {
            delta.remove.push(k); // duplicate — removal must stay idempotent
        }
    }
    if span.start.is_finite() && span.end.is_finite() {
        let (lo, hi) = (span.start.as_secs(), span.end.as_secs());
        for _ in 0..rng.gen_range(0..3) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let s = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            let e = (s + rng.gen_range(0.0f64..50.0)).min(hi);
            delta.append.push(Contact::secs(u, v, s, e));
        }
    }
    delta
}
