//! Property-based tests of the core invariants, spanning crates.
//!
//! The heart of the reproduction is the Pareto-frontier delivery function
//! and the §4.4 induction; these properties pin them against a naive model
//! (explicit minimum over summaries) and against the exponential
//! brute-force oracle on random tiny traces.

use omnet_core::{bruteforce, AllPairsProfiles, DeliveryFunction, HopBound, ProfileOptions};
use omnet_temporal::{Contact, Dur, Interval, LdEa, NodeId, Time, TraceBuilder};
use proptest::prelude::*;

/// Strategy: an arbitrary (LD, EA) summary with small-ish coordinates.
fn ldea_strategy() -> impl Strategy<Value = LdEa> {
    (0u32..200, 0u32..200).prop_map(|(a, b)| LdEa {
        ld: Time::secs(a as f64),
        ea: Time::secs(b as f64),
    })
}

/// Naive delivery: the explicit minimum of Eq. (3) over raw summaries.
fn naive_delivery(pairs: &[LdEa], t: Time) -> Time {
    pairs
        .iter()
        .filter(|p| t <= p.ld)
        .map(|p| t.max(p.ea))
        .min()
        .unwrap_or(Time::INF)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frontier_invariant_holds_after_any_insertions(pairs in prop::collection::vec(ldea_strategy(), 0..40)) {
        let mut f = DeliveryFunction::empty();
        for p in &pairs {
            f.insert(*p);
            prop_assert!(f.check_invariant(), "invariant broken after inserting {p:?}");
        }
    }

    #[test]
    fn frontier_delivery_equals_naive_min(
        pairs in prop::collection::vec(ldea_strategy(), 0..40),
        probes in prop::collection::vec(0u32..220, 1..20),
    ) {
        let f = DeliveryFunction::from_pairs(pairs.clone());
        for q in probes {
            let t = Time::secs(q as f64);
            prop_assert_eq!(f.delivery(t), naive_delivery(&pairs, t));
        }
    }

    #[test]
    fn from_pairs_equals_incremental_insert(pairs in prop::collection::vec(ldea_strategy(), 0..40)) {
        let batch = DeliveryFunction::from_pairs(pairs.clone());
        let mut inc = DeliveryFunction::empty();
        for p in pairs {
            inc.insert(p);
        }
        prop_assert_eq!(batch.pairs(), inc.pairs());
    }

    #[test]
    fn extend_with_equals_naive_concat(
        pairs in prop::collection::vec(ldea_strategy(), 0..30),
        (cs, clen) in (0u32..200, 0u32..50),
    ) {
        let iv = Interval::secs(cs as f64, (cs + clen) as f64);
        let f = DeliveryFunction::from_pairs(pairs.clone());
        let fast = DeliveryFunction::from_pairs(f.extend_with(iv));
        // naive: concat every raw summary with the contact, then compact
        let contact_summary = LdEa { ld: iv.end, ea: iv.start };
        // deduplicate frontier first (naive concat over the frontier, not the
        // raw set — extend_with is defined on the frontier)
        let naive = DeliveryFunction::from_pairs(
            f.pairs().iter().filter_map(|p| p.concat(contact_summary)),
        );
        prop_assert_eq!(fast.pairs(), naive.pairs());
    }

    #[test]
    fn success_measure_matches_sampling(
        pairs in prop::collection::vec(ldea_strategy(), 0..20),
        budget in 0u32..100,
    ) {
        let f = DeliveryFunction::from_pairs(pairs);
        let window = Interval::secs(0.0, 200.0);
        let x = Dur::secs(budget as f64);
        let exact = f.success_measure(window, x);
        // Riemann estimate on a fine grid
        let samples = 4000;
        let mut hit = 0usize;
        for i in 0..samples {
            let t = Time::secs(200.0 * (i as f64 + 0.5) / samples as f64);
            if f.delay(t) <= x {
                hit += 1;
            }
        }
        let approx = hit as f64 / samples as f64;
        prop_assert!((exact - approx).abs() < 0.02, "exact {exact} vs sampled {approx}");
    }
}

/// Naive O(n²) Pareto filter: keep exactly the summaries not strictly
/// dominated by another (`other` departs no earlier AND arrives no later).
fn naive_pareto(pairs: &[LdEa]) -> Vec<LdEa> {
    let mut uniq: Vec<LdEa> = Vec::new();
    for p in pairs {
        if !uniq.contains(p) {
            uniq.push(*p);
        }
    }
    let mut kept: Vec<LdEa> = uniq
        .iter()
        .filter(|p| !uniq.iter().any(|q| q != *p && q.ld >= p.ld && q.ea <= p.ea))
        .copied()
        .collect();
    kept.sort_by_key(|x| x.ld);
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn from_pairs_equals_naive_pareto_filter(pairs in prop::collection::vec(ldea_strategy(), 0..40)) {
        let f = DeliveryFunction::from_pairs(pairs.clone());
        let expected = naive_pareto(&pairs);
        prop_assert_eq!(
            f.pairs(),
            expected.as_slice(),
            "frontier of {:?} differs from the naive Pareto filter",
            pairs
        );
    }

    #[test]
    fn delivery_is_monotone_non_decreasing(
        pairs in prop::collection::vec(ldea_strategy(), 0..40),
        t1 in 0u32..250,
        t2 in 0u32..250,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let f = DeliveryFunction::from_pairs(pairs);
        let (d_lo, d_hi) = (f.delivery(Time::secs(lo as f64)), f.delivery(Time::secs(hi as f64)));
        prop_assert!(
            d_lo <= d_hi,
            "delivery({lo}) = {d_lo:?} > delivery({hi}) = {d_hi:?}"
        );
    }
}

/// Strategy: a random tiny trace (3-6 nodes, up to 8 contacts).
fn trace_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    prop::collection::vec(
        (0u32..6, 0u32..6, 0u32..100, 0u32..40).prop_filter_map("self contact", |(u, v, s, d)| {
            if u == v {
                None
            } else {
                Some((u, v, s, s + d))
            }
        }),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn algorithm_matches_bruteforce_on_random_traces(spec in trace_strategy()) {
        let mut b = TraceBuilder::new().num_nodes(6);
        for (u, v, s, e) in &spec {
            b.push(Contact::secs(*u, *v, *s as f64, *e as f64));
        }
        let trace = b.build();
        let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());
        for s in 0..6u32 {
            for d in 0..6u32 {
                if s == d {
                    continue;
                }
                for k in 1..=4usize {
                    let brute = bruteforce::delivery_function(&trace, NodeId(s), NodeId(d), k);
                    let fast = profiles.profile(NodeId(s), NodeId(d), HopBound::AtMost(k));
                    prop_assert_eq!(
                        brute.pairs(),
                        fast.pairs(),
                        "pair {}->{} at k={} in {:?}",
                        s, d, k, spec
                    );
                }
            }
        }
    }

    #[test]
    fn dijkstra_matches_profiles_on_random_traces(spec in trace_strategy(), start in 0u32..150) {
        let mut b = TraceBuilder::new().num_nodes(6);
        for (u, v, s, e) in &spec {
            b.push(Contact::secs(*u, *v, *s as f64, *e as f64));
        }
        let trace = b.build();
        let t0 = Time::secs(start as f64);
        let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());
        for s in 0..6u32 {
            let tree = omnet_core::earliest_arrival(&trace, NodeId(s), t0);
            for d in 0..6u32 {
                let via = profiles
                    .profile(NodeId(s), NodeId(d), HopBound::Unlimited)
                    .delivery(t0);
                prop_assert_eq!(via, tree.arrival(NodeId(d)));
            }
        }
    }

    #[test]
    fn transforms_preserve_structure(spec in trace_strategy(), p_milli in 0u32..1000) {
        let mut b = TraceBuilder::new().num_nodes(6);
        for (u, v, s, e) in &spec {
            b.push(Contact::secs(*u, *v, *s as f64, *e as f64));
        }
        let trace = b.build();
        // random removal never grows the trace, preserves universe/window
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(p_milli as u64);
        let removed =
            omnet_temporal::transform::remove_random(&trace, p_milli as f64 / 1000.0, &mut rng);
        prop_assert!(removed.num_contacts() <= trace.num_contacts());
        prop_assert_eq!(removed.num_nodes(), trace.num_nodes());
        prop_assert_eq!(removed.span(), trace.span());
        // duration filtering keeps exactly the long-enough ones
        let thresh = Dur::secs(10.0);
        let filtered = omnet_temporal::transform::min_duration(&trace, thresh);
        prop_assert_eq!(
            filtered.num_contacts(),
            trace.contacts().iter().filter(|c| c.duration() >= thresh).count()
        );
        // quantization yields grid-aligned contacts covering the originals
        // (sorting may reorder ties, so match by coverage, not position)
        let g = Dur::secs(7.0);
        let quant = omnet_temporal::transform::quantize(&trace, g);
        prop_assert_eq!(quant.num_contacts(), trace.num_contacts());
        for orig in trace.contacts() {
            let covered = quant.contacts().iter().any(|q| {
                q.a == orig.a
                    && q.b == orig.b
                    && (q.start() <= orig.start() || q.start() == trace.span().start)
                    && q.end() >= orig.end().min(trace.span().end)
            });
            prop_assert!(covered, "no quantized contact covers {orig:?}");
        }
    }

    #[test]
    fn trace_io_roundtrip(spec in trace_strategy()) {
        let mut b = TraceBuilder::new().num_nodes(6).internal(4);
        for (u, v, s, e) in &spec {
            b.push(Contact::secs(*u, *v, *s as f64, *e as f64));
        }
        let trace = b.build();
        let text = omnet_temporal::io::to_string(&trace);
        let back = omnet_temporal::io::from_str(&text).unwrap();
        prop_assert_eq!(back.contacts(), trace.contacts());
        prop_assert_eq!(back.num_nodes(), trace.num_nodes());
        prop_assert_eq!(back.num_internal(), trace.num_internal());
        prop_assert_eq!(back.span(), trace.span());
    }

    #[test]
    fn flooding_is_optimal_among_schemes(spec in trace_strategy(), start in 0u32..100) {
        let mut b = TraceBuilder::new().num_nodes(6);
        for (u, v, s, e) in &spec {
            b.push(Contact::secs(*u, *v, *s as f64, *e as f64));
        }
        let trace = b.build();
        let t0 = Time::secs(start as f64);
        for s in 0..3u32 {
            let out = omnet_flooding::flood(&trace, NodeId(s), t0, None);
            for d in 0..6u32 {
                if s == d { continue; }
                let direct = omnet_flooding::direct_delivery(&trace, NodeId(s), NodeId(d), t0);
                let two = omnet_flooding::two_hop_relay(&trace, NodeId(s), NodeId(d), t0, 3);
                let fl = out.delivery(NodeId(d));
                prop_assert!(fl <= direct);
                prop_assert!(fl <= two);
                prop_assert!(two <= direct);
            }
        }
    }
}
