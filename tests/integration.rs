//! End-to-end integration tests spanning every crate: synthetic data sets
//! flow through the trace machinery into the path/diameter analyses, random
//! temporal networks flow into the core algorithm, and the paper's headline
//! qualitative claims hold on small instances.

use opportunistic_diameter::prelude::*;
use opportunistic_diameter::random::theory;
use opportunistic_diameter::temporal::{stats, transform};

/// A small conference slice used across tests (deterministic).
fn conference_slice() -> Trace {
    transform::internal_only(&Dataset::Infocom05.generate_days(0.25, 11))
}

#[test]
fn dataset_to_diameter_pipeline() {
    let trace = conference_slice();
    assert!(trace.num_contacts() > 300, "slice unexpectedly sparse");
    let grid: Vec<Dur> = log_grid(120.0, 21_600.0, 8)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let curves = SuccessCurves::compute(&trace, &CurveOptions::standard(12, grid));
    let d = curves.diameter(0.01);
    assert!(d.is_some(), "conference slice must have a finite diameter");
    assert!(d.unwrap() <= 12, "diameter {d:?} unreasonably large");
    // flooding success grows with the budget
    let flood = curves.curve(HopBound::Unlimited).unwrap();
    assert!(flood.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    assert!(flood[flood.len() - 1] > 0.2);
}

#[test]
fn discrete_random_model_through_core_algorithm() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let model = DiscreteModel::new(40, 1.0);
    let slots = model.sample(30, &mut rng);
    let trace = model.to_trace(&slots, 1.0);
    let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());
    // flooding from node 0 at slot 0 must match the slot DP reachability
    let flood = opportunistic_diameter::flooding::flood(&trace, NodeId(0), Time::ZERO, None);
    let reached = flood.reached();
    assert!(reached > 10, "a λ=1 network over 30 slots should percolate");
    for d in 1..40u32 {
        let via = profiles
            .profile(NodeId(0), NodeId(d), HopBound::Unlimited)
            .delivery(Time::ZERO);
        assert_eq!(via, flood.delivery(NodeId(d)));
    }
}

#[test]
fn continuous_model_instantaneous_contacts_forward() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let trace = ContinuousModel::new(30, 1.5).generate(40.0, &mut rng);
    let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());
    // with instantaneous contacts, multi-hop paths still form over time
    let mut multi_hop_pairs = 0;
    for s in 0..30u32 {
        for d in 0..30u32 {
            if s == d {
                continue;
            }
            let one = profiles.profile(NodeId(s), NodeId(d), HopBound::AtMost(1));
            let all = profiles.profile(NodeId(s), NodeId(d), HopBound::Unlimited);
            if all.delivery(Time::ZERO) < Time::INF && one.delivery(Time::ZERO) == Time::INF {
                multi_hop_pairs += 1;
            }
        }
    }
    assert!(
        multi_hop_pairs > 50,
        "only {multi_hop_pairs} multi-hop pairs"
    );
}

#[test]
fn hop_ttl_saturates_at_the_diameter() {
    let trace = conference_slice();
    let grid: Vec<Dur> = log_grid(120.0, 21_600.0, 6)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let curves = SuccessCurves::compute(&trace, &CurveOptions::standard(10, grid));
    let diam = curves.diameter(0.01).expect("finite diameter");
    let flood = curves.curve(HopBound::Unlimited).unwrap();
    let at_diam = curves.curve(HopBound::AtMost(diam)).unwrap();
    for (a, f) in at_diam.iter().zip(flood) {
        assert!(*a >= 0.99 * f - 1e-12);
    }
    // and one hop class below must fail the criterion somewhere
    if diam > 1 {
        let below = curves.curve(HopBound::AtMost(diam - 1)).unwrap();
        assert!(
            below.iter().zip(flood).any(|(b, f)| *b < 0.99 * f),
            "diameter not minimal"
        );
    }
}

#[test]
fn contact_removal_experiment_end_to_end() {
    use rand::SeedableRng;
    let trace = conference_slice();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let removed = transform::remove_random(&trace, 0.9, &mut rng);
    let grid: Vec<Dur> = log_grid(120.0, 21_600.0, 6)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let full = SuccessCurves::compute(&trace, &CurveOptions::standard(6, grid.clone()));
    let thin = SuccessCurves::compute(&removed, &CurveOptions::standard(6, grid));
    let f_full = full.curve(HopBound::Unlimited).unwrap();
    let f_thin = thin.curve(HopBound::Unlimited).unwrap();
    // removal can only hurt flooding success (statistically; allow epsilon)
    for (a, b) in f_thin.iter().zip(f_full) {
        assert!(*a <= b + 0.02, "removal improved success: {a} > {b}");
    }
}

#[test]
fn duration_filter_keeps_small_delay_paths_better_than_random() {
    // the §6.2 observation, on a synthetic conference day
    use rand::SeedableRng;
    let trace = transform::internal_only(&Dataset::Infocom06.generate_days(0.5, 21));
    let by_duration = transform::min_duration(&trace, Dur::mins(10.0));
    let frac_kept = by_duration.num_contacts() as f64 / trace.num_contacts() as f64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let by_random = transform::remove_random(&trace, 1.0 - frac_kept, &mut rng);
    let grid = vec![Dur::mins(10.0)];
    let d_cur = SuccessCurves::compute(&by_duration, &CurveOptions::standard(6, grid.clone()));
    let r_cur = SuccessCurves::compute(&by_random, &CurveOptions::standard(6, grid));
    let d10 = d_cur.curve(HopBound::Unlimited).unwrap()[0];
    let r10 = r_cur.curve(HopBound::Unlimited).unwrap()[0];
    assert!(
        d10 > r10,
        "keeping long contacts should preserve more quick paths: {d10} vs {r10}"
    );
}

#[test]
fn trace_io_of_generated_dataset() {
    let trace = Dataset::HongKong.generate_days(1.0, 13);
    let text = opportunistic_diameter::temporal::io::to_string(&trace);
    let back = opportunistic_diameter::temporal::io::from_str(&text).unwrap();
    assert_eq!(back.contacts(), trace.contacts());
    assert_eq!(back.num_internal(), trace.num_internal());
    let s1 = stats::TraceStats::of(&trace);
    let s2 = stats::TraceStats::of(&back);
    assert_eq!(s1, s2);
}

#[test]
fn theory_constants_consistent_across_crates() {
    // the λ→0 limit of the hop coefficient is 1 in both cases (paper §3.3)
    for case in [ContactCase::Short, ContactCase::Long] {
        assert!((theory::hop_coefficient(case, 1e-9) - 1.0).abs() < 1e-6);
    }
    // paper's short-contact λ=0.5 example
    assert!((theory::delay_coefficient(ContactCase::Short, 0.5) - 2.466).abs() < 5e-3);
}

#[test]
fn zhang_baseline_agrees_on_boundaries_of_generated_trace() {
    let trace = transform::internal_only(&Dataset::Infocom05.generate_days(0.1, 17));
    let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());
    let z = ZhangProfile::compute(&trace, NodeId(0));
    for c in trace.contacts().iter().step_by(7) {
        for d in 1..trace.num_internal().min(10) {
            let exact = profiles
                .profile(NodeId(0), NodeId(d), HopBound::Unlimited)
                .delivery(c.start());
            assert_eq!(z.delivery(NodeId(d), c.start()), exact);
        }
    }
}
