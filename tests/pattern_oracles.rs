//! Closed-form oracles: the pattern zoo's delivery functions and diameters
//! are known analytically; the full pipeline must reproduce them exactly.

use opportunistic_diameter::core::{reachability_by_hops, ProfileStats};
use opportunistic_diameter::prelude::*;
use opportunistic_diameter::temporal::patterns;

#[test]
fn relay_line_delivery_function_is_exact() {
    // contacts: i—i+1 live on [100 i, 100 i + 10]
    let t = patterns::relay_line(5, 100.0, 10.0);
    let p = AllPairsProfiles::compute(&t, ProfileOptions::default());
    // 0 -> 4 uses all four contacts: LD = end of first = 10, EA = start of
    // last = 300.
    let f = p.profile(NodeId(0), NodeId(4), HopBound::Unlimited);
    assert_eq!(f.len(), 1);
    assert_eq!(f.pairs()[0].ld, Time::secs(10.0));
    assert_eq!(f.pairs()[0].ea, Time::secs(300.0));
    // intermediate destinations: LD stays 10, EA = 100 (i-1)
    for d in 1..4u32 {
        let f = p.profile(NodeId(0), NodeId(d), HopBound::Unlimited);
        assert_eq!(f.len(), 1, "0->{d}");
        assert_eq!(f.pairs()[0].ea, Time::secs((d as f64 - 1.0) * 100.0));
    }
    // the reverse direction is impossible beyond each shared contact
    assert!(p
        .profile(NodeId(4), NodeId(0), HopBound::Unlimited)
        .is_empty());
}

#[test]
fn relay_line_hop_classes_match_distance() {
    let t = patterns::relay_line(6, 50.0, 5.0);
    let p = AllPairsProfiles::compute(&t, ProfileOptions::default());
    for d in 1..6u32 {
        let need = d as usize; // 0 -> d needs exactly d hops
        assert!(
            p.profile(NodeId(0), NodeId(d), HopBound::AtMost(need - 1))
                .is_empty(),
            "0->{d} reachable too early"
        );
        assert!(
            !p.profile(NodeId(0), NodeId(d), HopBound::AtMost(need))
                .is_empty(),
            "0->{d} not reachable at its distance"
        );
    }
    let stats = ProfileStats::of(&p);
    assert_eq!(stats.max_useful_hops(), 5);
}

#[test]
fn sequential_star_spokes_route_through_hub() {
    let t = patterns::sequential_star(5, 100.0, 10.0);
    let p = AllPairsProfiles::compute(&t, ProfileOptions::default());
    // spoke i -> spoke j (i < j): pick up at hub contact i, drop at contact j:
    // LD = 100 i + 10, EA = 100 j.
    for i in 1..5u32 {
        for j in (i + 1)..5u32 {
            let f = p.profile(NodeId(i), NodeId(j), HopBound::Unlimited);
            assert_eq!(f.len(), 1, "{i}->{j}");
            assert_eq!(f.pairs()[0].ld, Time::secs(i as f64 * 100.0 + 10.0));
            assert_eq!(f.pairs()[0].ea, Time::secs(j as f64 * 100.0));
            // exactly two hops, never one
            assert!(p
                .profile(NodeId(i), NodeId(j), HopBound::AtMost(1))
                .is_empty());
            assert!(!p
                .profile(NodeId(i), NodeId(j), HopBound::AtMost(2))
                .is_empty());
            // and never backwards in visit order
            assert!(p
                .profile(NodeId(j), NodeId(i), HopBound::Unlimited)
                .is_empty());
        }
    }
}

#[test]
fn rotating_ring_hop_distance_follows_the_rotation() {
    // 4 nodes, 8 steps: message at node 0 rides 0-1, 1-2, 2-3, …
    let t = patterns::rotating_ring(4, 8, 10.0, 2.0);
    let p = AllPairsProfiles::compute(&t, ProfileOptions::default());
    let f = p.profile(NodeId(0), NodeId(3), HopBound::Unlimited);
    assert!(!f.is_empty());
    // forward rotation needs 3 hops (0->1->2->3) earliest arriving at the
    // 2-3 contact (t = 20); the direct wrap contact (3,0) at step 3 gives a
    // 1-hop option later (t = 30).
    let flood = opportunistic_diameter::flooding::flood(&t, NodeId(0), Time::ZERO, None);
    assert_eq!(flood.delivery(NodeId(3)), Time::secs(20.0));
    assert_eq!(flood.hops[3], 3);
    let one_hop = p.profile(NodeId(0), NodeId(3), HopBound::AtMost(1));
    assert!(!one_hop.is_empty());
    assert_eq!(one_hop.pairs()[0].ea, Time::secs(30.0));
}

#[test]
fn periodic_clique_diameter_is_one() {
    let t = patterns::periodic_clique(6, 3, 100.0, 10.0);
    let grid: Vec<Dur> = vec![Dur::secs(10.0), Dur::secs(100.0), Dur::INF];
    let curves = SuccessCurves::compute(&t, &CurveOptions::standard(3, grid));
    assert_eq!(curves.diameter(0.01), Some(1));
    let p = AllPairsProfiles::compute(&t, ProfileOptions::default());
    let stairs = reachability_by_hops(&p, 2);
    assert_eq!(stairs, vec![1.0, 1.0]);
}

#[test]
fn two_communities_diameter_is_three() {
    // member -> courier (hop 1, even period), courier crosses (odd period),
    // courier -> member (hop 2), so worst pairs need 2 hops via the courier
    // but 3 when the sender must first reach the courier's side… measure it.
    let t = patterns::two_communities(4, 8, 100.0);
    let grid: Vec<Dur> = vec![Dur::secs(200.0), Dur::secs(500.0), Dur::INF];
    let curves = SuccessCurves::compute(&t, &CurveOptions::standard(6, grid));
    let d = curves.diameter(0.01).expect("connected enough");
    assert!((2..=3).contains(&d), "two-community diameter {d}");
}

#[test]
fn zoo_flooding_matches_profiles_everywhere() {
    let traces = [
        patterns::relay_line(6, 30.0, 5.0),
        patterns::sequential_star(6, 40.0, 8.0),
        patterns::rotating_ring(5, 12, 10.0, 3.0),
        patterns::periodic_clique(4, 2, 50.0, 10.0),
        patterns::two_communities(3, 4, 60.0),
    ];
    for t in &traces {
        let p = AllPairsProfiles::compute(t, ProfileOptions::default());
        for s in 0..t.num_nodes().min(6) {
            for probe in [0.0, 15.0, 95.0, 230.0] {
                let start = Time::secs(probe);
                let flood = opportunistic_diameter::flooding::flood(t, NodeId(s), start, None);
                for d in 0..t.num_nodes() {
                    assert_eq!(
                        flood.delivery(NodeId(d)),
                        p.profile(NodeId(s), NodeId(d), HopBound::Unlimited)
                            .delivery(start),
                        "{s}->{d} at {probe}"
                    );
                }
            }
        }
    }
}
