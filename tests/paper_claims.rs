//! The paper's headline qualitative claims, asserted end-to-end on small
//! (but non-toy) instances. These are the statements a reader would quote
//! from the abstract and conclusion; each test names the claim it pins.

use opportunistic_diameter::prelude::*;
use opportunistic_diameter::random::theory;
use opportunistic_diameter::random::{
    budgets, constrained_path_probability, estimate_optimal_path,
};
use opportunistic_diameter::temporal::transform;

fn slice() -> Trace {
    transform::internal_only(&Dataset::Infocom05.generate_days(0.25, 2))
}

fn slice_curves(trace: &Trace, max_hops: usize) -> SuccessCurves {
    let horizon = trace.span().duration().as_secs();
    let grid: Vec<Dur> = log_grid(120.0, horizon, 8)
        .into_iter()
        .map(Dur::secs)
        .collect();
    SuccessCurves::compute(trace, &CurveOptions::standard(max_hops, grid))
}

/// "Opportunistic mobile networks in general are characterized by a small
/// diameter" — a 41-device conference network needs only a handful of
/// relays, not O(N).
#[test]
fn claim_small_diameter() {
    let trace = slice();
    let curves = slice_curves(&trace, 12);
    let d = curves.diameter(0.01).expect("diameter exists");
    assert!(
        (2..=10).contains(&d),
        "diameter {d} outside the small-world band for 41 devices"
    );
}

/// "Messages can be discarded after a few hops without incurring more than
/// a marginal performance cost" (conclusion): at the diameter, the success
/// curve is within 1% of flooding at *every* delay.
#[test]
fn claim_ttl_cost_is_marginal() {
    let trace = slice();
    let curves = slice_curves(&trace, 12);
    let d = curves.diameter(0.01).expect("diameter exists");
    let at_d = curves.curve(HopBound::AtMost(d)).unwrap();
    let flood = curves.curve(HopBound::Unlimited).unwrap();
    for (a, f) in at_d.iter().zip(flood) {
        assert!(*a >= 0.99 * f - 1e-12, "{a} vs {f}");
    }
}

/// "The diameter varies only a little when contacts are removed" (§6.1):
/// removing 90% of contacts moves the diameter by at most a few hops.
#[test]
fn claim_diameter_robust_to_removal() {
    use rand::SeedableRng;
    let trace = slice();
    let base = slice_curves(&trace, 12).diameter(0.01).expect("baseline");
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let removed = transform::remove_random(&trace, 0.9, &mut rng);
    let after = slice_curves(&removed, 12).diameter(0.01);
    if let Some(after) = after {
        assert!(
            after as i64 - base as i64 <= 3,
            "removal exploded the diameter: {base} -> {after}"
        );
    }
    // (an unmeasurable diameter after removal would mean >12 hops — fail)
    assert!(after.is_some(), "diameter beyond 12 hops after removal");
}

/// "Opportunistic schemes have to take advantage of short contacts …
/// those may help to keep the diameter small" (§6.2): filtering short
/// contacts never shrinks the diameter.
#[test]
fn claim_short_contacts_keep_diameter_small() {
    let trace = transform::internal_only(&Dataset::Infocom06.generate_days(0.5, 5));
    let horizon = trace.span().duration().as_secs();
    let grid: Vec<Dur> = log_grid(120.0, horizon, 6)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let base = SuccessCurves::compute(&trace, &CurveOptions::standard(12, grid.clone()))
        .diameter(0.01)
        .expect("baseline diameter");
    let long_only = transform::min_duration(&trace, Dur::mins(10.0));
    let filtered =
        SuccessCurves::compute(&long_only, &CurveOptions::standard(12, grid)).diameter(0.01);
    // `None` means beyond 12 hops: grew, so the claim holds a fortiori.
    if let Some(f) = filtered {
        assert!(f >= base, "filtering shrank the diameter: {base} -> {f}");
    }
}

/// §3's phase transition: below the critical delay coefficient constrained
/// paths (almost) never exist; above it they (almost) always do.
#[test]
fn claim_phase_transition_dichotomy() {
    let n = 300;
    let lambda = 1.0;
    let case = ContactCase::Short;
    let m = theory::phase_maximum(case, lambda).unwrap();
    let gs = theory::gamma_star(case, lambda).unwrap();
    let model = DiscreteModel::new(n, lambda);
    let (t_sub, k_sub) = budgets(n, 0.4 / m, gs);
    let (t_sup, k_sup) = budgets(n, 3.0 / m, gs);
    let p_sub = constrained_path_probability(model, case, t_sub, k_sub, 40, 3);
    let p_sup = constrained_path_probability(model, case, t_sup, k_sup, 40, 3);
    assert!(p_sub < 0.2, "sub-critical P[path] = {p_sub}");
    assert!(p_sup > 0.9, "super-critical P[path] = {p_sup}");
}

/// §3.3: the hop count of the delay-optimal path "varies little with the
/// contact rate" — across an 8× rate change the normalized hop count stays
/// within a factor ~2, while the delay coefficient moves by much more.
#[test]
fn claim_hop_count_insensitive_to_rate() {
    let case = ContactCase::Short;
    let lo = estimate_optimal_path(DiscreteModel::new(600, 0.25), case, 2_000, 20, 4);
    let hi = estimate_optimal_path(DiscreteModel::new(600, 2.0), case, 2_000, 20, 4);
    assert_eq!(lo.misses + hi.misses, 0);
    let hop_ratio = lo.hop_coefficient / hi.hop_coefficient;
    let delay_ratio = lo.delay_coefficient / hi.delay_coefficient;
    assert!(
        (0.5..=2.5).contains(&hop_ratio),
        "hop coefficient moved too much: {hop_ratio}"
    );
    assert!(
        delay_ratio > 2.0 * hop_ratio,
        "delay should react far more than hops: delay x{delay_ratio:.2}, hops x{hop_ratio:.2}"
    );
}

/// §5.3's cross-data-set contrast: the conference network is far better
/// connected than the city one at equal observation length.
#[test]
fn claim_conference_denser_than_city() {
    let conf = transform::internal_only(&Dataset::Infocom05.generate_days(1.0, 6));
    let city = transform::internal_only(&Dataset::HongKong.generate_days(1.0, 6));
    let grid = vec![Dur::hours(6.0)];
    let c_conf = SuccessCurves::compute(&conf, &CurveOptions::standard(1, grid.clone()));
    let c_city = SuccessCurves::compute(&city, &CurveOptions::standard(1, grid));
    let direct_conf = c_conf.curve(HopBound::AtMost(1)).unwrap()[0];
    let direct_city = c_city.curve(HopBound::AtMost(1)).unwrap()[0];
    assert!(
        direct_conf > 10.0 * direct_city,
        "conference {direct_conf} vs city {direct_city}"
    );
}
