//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated wall-clock mean (warm-up, then enough iterations to
//! fill a fixed measurement window) printed as plain text — adequate for
//! relative comparisons, with none of upstream's statistics machinery.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Accepted for compatibility; the vendored runner sizes iteration
    /// counts from the measurement window instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Criterion {
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Criterion {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Criterion {
        let label = id.to_string();
        self.run_one(&label, &mut f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, f: &mut F) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((iters, per_iter)) => {
                println!("{label:<60} {:>14}/iter  ({iters} iters)", fmt_ns(per_iter));
            }
            None => println!("{label:<60} (no measurement)"),
        }
    }
}

/// A named group of benchmarks sharing a `Criterion` configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; see [`Criterion::sample_size`].
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (a no-op in the vendored runner).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<(u64, f64)>,
}

impl Bencher {
    /// Measures `routine`: warm-up to calibrate a per-batch iteration
    /// count, then repeated batches until the measurement window is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measurement {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        self.report = Some((iters, ns));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("demo");
        g.measurement_time(Duration::from_millis(20));
        let mut ran = false;
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
