//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: the [`Rng`] and
//! [`SeedableRng`] traits, uniform range sampling over the primitive
//! numeric types, and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64.
//!
//! Semantics intentionally match rand 0.8 where the workspace depends on
//! them (half-open ranges, `gen::<f64>()` uniform in `[0, 1)`), but the
//! exact streams differ from upstream — seeds reproduce runs of *this*
//! repository, not of crates.io rand.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Types that can be drawn uniformly from their full domain (the vendored
/// analogue of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1), the rand 0.8 convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u64() as i32
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64 range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `0..span` (`span > 0`) via Lemire-style
/// rejection; `span == 0` means the full `u64` domain.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the multiply-shift reduction unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

/// The raw generator interface: a source of `u64` words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` convenience seed (SplitMix64-expanded).
    fn from_u64_seed(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }

    /// rand-compatible spelling of [`SeedableRng::from_u64_seed`].
    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64_seed(state)
    }
}

/// SplitMix64: seed expander and minimal standalone generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream starting from `state`.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.gen_range(0u32..10);
            assert!(k < 10);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        for _ in 0..1_000 {
            let x = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&x));
        }
        for _ in 0..100 {
            let k = rng.gen_range(3usize..=3);
            assert_eq!(k, 3);
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn rng_by_mut_reference() {
        fn takes_generic<R: Rng>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let r = &mut rng;
        assert!(takes_generic(r).is_finite());
    }
}
