//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! The workspace only uses crossbeam for scoped fork/join
//! (`crossbeam::thread::scope` + `Scope::spawn`), which std has provided
//! natively since Rust 1.63. This vendored crate keeps the crossbeam call
//! shape — a `Result` distinguishing clean completion from worker panics,
//! and spawn closures receiving the scope — while delegating the actual
//! thread management to [`std::thread::scope`].
//!
//! One deliberate deviation: the scope handle is a `Copy` value passed by
//! value (rather than by reference) so it can be rebuilt inside worker
//! closures without fighting `std`'s scope lifetime. Call sites that bind
//! the handle with a closure parameter — the only pattern this workspace
//! uses — compile unchanged.

#![deny(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A panic payload from one of the scoped workers.
    pub type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// A handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope (so
        /// workers may spawn more workers), matching crossbeam's shape.
        pub fn spawn<F, T>(self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(self))
        }
    }

    /// Runs `f` with a scope in which borrowing worker threads can be
    /// spawned; joins them all before returning.
    ///
    /// Returns `Err(payload)` when any worker (or `f` itself) panicked,
    /// like crossbeam — instead of std's resume-unwind behaviour.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn workers_can_borrow_locals() {
            let counter = AtomicUsize::new(0);
            let out = super::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
                "done"
            })
            .unwrap();
            assert_eq!(out, "done");
            assert_eq!(counter.load(Ordering::Relaxed), 8);
        }

        #[test]
        fn worker_panic_becomes_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn() {
            let counter = AtomicUsize::new(0);
            super::scope(|scope| {
                scope.spawn(|inner| {
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 1);
        }
    }
}
