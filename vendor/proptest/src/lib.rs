//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_filter_map` combinators, range and
//! tuple strategies, `prop::collection::vec` and `prop::option::of`, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test seed (derived from the test path) with **no shrinking** — a
//! failure reports the case number so the exact draw can be replayed, but
//! is not minimized. `PROPTEST_CASES` in the environment overrides the
//! per-test case count, exactly like upstream.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// The RNG handed to strategies: the workspace's deterministic generator.
pub type TestRng = rand::rngs::StdRng;

/// How many consecutive rejections (`prop_filter` / `prop_filter_map`)
/// abort a test with a clear diagnostic instead of spinning forever.
const MAX_REJECTS: u32 = 10_000;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use rand::{Rng, SampleRange};

    /// A recipe for generating random values of one type.
    ///
    /// Unlike upstream proptest there is no value tree: a strategy is
    /// sampled directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards values for which `f` is false, resampling.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Maps values through `f`, resampling when it returns `None`.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..super::MAX_REJECTS {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("strategy rejected too many values: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            for _ in 0..super::MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!("strategy rejected too many values: {}", self.reason);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    }

    /// Ranges accepted as collection sizes.
    pub trait SizeRange: SampleRange<usize> + Clone {}

    impl<R: SampleRange<usize> + Clone> SizeRange for R {}
}

pub mod prop {
    //! The `prop::` namespace of strategy constructors.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{SizeRange, Strategy};
        use crate::TestRng;
        use rand::Rng;

        /// A strategy for `Vec`s whose length is drawn from `size` and
        /// whose elements come from `element`.
        pub fn vec<S: Strategy>(
            element: S,
            size: impl SizeRange,
        ) -> VecStrategy<S, impl SizeRange> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::TestRng;
        use rand::Rng;

        /// A strategy yielding `None` about a quarter of the time and
        /// `Some(inner)` otherwise (upstream's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, failure type, and the case loop.

    use super::TestRng;
    use rand::SeedableRng;

    /// Per-test configuration (only the fields the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed case: the message produced by a `prop_assert*` macro.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// FNV-1a over the test path: a stable per-test base seed.
    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `body` for every case, panicking on the first failure with
    /// enough context to replay it (test path + case index).
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let base = fnv1a(name);
        for case in 0..cases {
            let seed = base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest {name} failed at case {case}/{cases} (seed {seed:#018x}):\n{}",
                    e.message
                );
            }
        }
    }
}

/// Declares property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(pattern in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                &$cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    let __proptest_out: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    __proptest_out
                },
            );
        }
    )*};
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the enclosing property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Point {
        x: u32,
        y: u32,
    }

    fn point_strategy() -> impl Strategy<Value = Point> {
        (0u32..100, 0u32..100).prop_map(|(x, y)| Point { x, y })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn map_and_ranges(p in point_strategy(), k in 1u32..10) {
            prop_assert!(p.x < 100 && p.y < 100);
            prop_assert!((1..10).contains(&k));
        }

        #[test]
        fn filter_map_respects_predicate(
            v in prop::collection::vec(
                (0u32..6, 0u32..6).prop_filter_map("distinct", |(a, b)| {
                    if a == b { None } else { Some((a, b)) }
                }),
                1..8,
            ),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (a, b) in v {
                prop_assert_ne!(a, b);
            }
        }

        #[test]
        fn option_of_yields_both_variants(opts in prop::collection::vec(prop::option::of(0u32..5), 40..60)) {
            // With ~48 draws at P(None) = 1/4, both variants all but surely appear.
            prop_assert!(opts.iter().any(|o| o.is_none()));
            prop_assert!(opts.iter().any(|o| o.is_some()));
        }

        #[test]
        fn early_return_is_allowed(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u32..1000, 0u32..1000);
        let mut r1 = crate::TestRng::seed_from_u64(99);
        let mut r2 = crate::TestRng::seed_from_u64(99);
        use rand::SeedableRng;
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::test_runner::run(
            &crate::test_runner::ProptestConfig::with_cases(4),
            "demo::always_fails",
            |_rng| Err(crate::test_runner::TestCaseError::fail("nope")),
        );
    }
}
