//! The exploration driver: run a closure under every (bounded) schedule.

use crate::rt::{Branch, Config, Rt};
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes model executions process-wide: two concurrently running
/// models would interleave real OS threads outside scheduler control (and
/// `cargo test` runs tests in parallel by default).
fn model_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Exploration configuration, mirroring `loom::model::Builder`.
///
/// Defaults come from the environment (`LOOM_MAX_PREEMPTIONS`,
/// `LOOM_MAX_BRANCHES`, `LOOM_MAX_ITERATIONS`); individual models override
/// the fields to trade coverage against run time.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Max preemptive context switches per execution (`None` = unbounded —
    /// usually intractable for anything but toy models).
    pub preemption_bound: Option<usize>,
    /// Max scheduling decisions in a single execution before the model is
    /// declared divergent (an unbounded loop).
    pub max_branches: usize,
    /// Max executions explored before stopping early with a note.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    /// A builder with environment-derived defaults.
    pub fn new() -> Builder {
        Builder {
            preemption_bound: Some(env_usize("LOOM_MAX_PREEMPTIONS", 2)),
            max_branches: env_usize("LOOM_MAX_BRANCHES", 20_000),
            max_iterations: env_usize("LOOM_MAX_ITERATIONS", 50_000),
        }
    }

    /// Explores `f` under every schedule within the configured bounds.
    ///
    /// Panics (on the caller) when any execution panics, deadlocks, or
    /// exceeds the branch budget, after printing the execution count that
    /// identifies the failing schedule.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serial = model_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cfg = Config {
            max_preemptions: self.preemption_bound.unwrap_or(usize::MAX),
            max_branches: self.max_branches,
        };
        let f = Arc::new(f);
        let mut path: Vec<Branch> = Vec::new();
        let mut iters: usize = 0;
        loop {
            iters += 1;
            let rt = Arc::new(Rt::new(cfg, std::mem::take(&mut path)));
            let body = Arc::clone(&f);
            rt.spawn_thread(move || body(), Some("model-root".to_string()));
            let (final_path, failure, panic) = rt.wait_done_and_join();
            if let Some(p) = panic {
                eprintln!("loom: a model thread panicked on execution {iters} (of the schedules explored so far)");
                std::panic::resume_unwind(p);
            }
            if let Some(msg) = failure {
                panic!("loom: {msg} (execution {iters})");
            }
            path = final_path;
            // Depth-first backtrack: advance the deepest decision that
            // still has unexplored options, discarding everything below.
            loop {
                match path.last_mut() {
                    None => {
                        eprintln!("loom: explored {iters} executions (schedule tree exhausted)");
                        return;
                    }
                    Some(b) if b.chosen + 1 < b.options => {
                        b.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        path.pop();
                    }
                }
            }
            if iters >= self.max_iterations {
                eprintln!(
                    "loom: stopping after {iters} executions (LOOM_MAX_ITERATIONS) — \
                     schedule tree not exhausted"
                );
                return;
            }
        }
    }
}

/// Explores `f` under every schedule within the default bounds; the model
/// fails by panicking on the caller. See [`Builder`] to tune bounds.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
