//! Shadow `std::thread`: model threads inside [`crate::model`], real
//! threads outside it.

use crate::rt;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

/// Result slot shared between a model thread and its [`JoinHandle`].
type Slot<T> = Arc<Mutex<Option<T>>>;

enum Imp<T> {
    Model {
        rt: Arc<rt::Rt>,
        tid: usize,
        slot: Slot<T>,
    },
    Std(std::thread::JoinHandle<T>),
}

/// Shadow `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Model {
                rt,
                tid: target,
                slot,
            } => {
                let (_, me) = rt::current()
                    .expect("loom: join() on a model JoinHandle from outside the model");
                match rt.join(me, target) {
                    Some(payload) => Err(payload),
                    None => Ok(slot
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("loom: joined model thread left no result")),
                }
            }
            Imp::Std(h) => h.join(),
        }
    }
}

fn spawn_impl<F, T>(f: F, name: Option<String>) -> io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        Some((rt, me)) => {
            let slot: Slot<T> = Arc::new(Mutex::new(None));
            let out = Arc::clone(&slot);
            let tid = rt.spawn_thread(
                move || {
                    let v = f();
                    *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                },
                name,
            );
            // Spawning is a visible operation: the child may run before the
            // parent's next step.
            rt.switch(me);
            Ok(JoinHandle {
                imp: Imp::Model { rt, tid, slot },
            })
        }
        None => {
            let mut b = std::thread::Builder::new();
            if let Some(n) = name {
                b = b.name(n);
            }
            b.spawn(f).map(|h| JoinHandle { imp: Imp::Std(h) })
        }
    }
}

/// Shadow `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_impl(f, None).expect("loom: failed to spawn thread")
}

/// Shadow `std::thread::Builder` (name-only subset).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A builder with no name set.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Names the thread (surfaced in deadlock reports).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the thread.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_impl(f, self.name)
    }
}

/// Shadow `std::thread::yield_now`: a pure switch point in a model, a real
/// yield outside one.
pub fn yield_now() {
    if rt::current().is_some() {
        rt::hit();
    } else {
        std::thread::yield_now();
    }
}
