//! The scheduler: serialized execution of model threads plus depth-first
//! exploration of scheduling decisions.
//!
//! One [`Rt`] exists per *execution* (one run of the modeled closure). All
//! model threads are real OS threads, but a token (`State::active`) admits
//! exactly one at a time; every visible operation on a shadow type calls
//! [`hit`]/[`Rt::switch`], which consults the DFS path to decide which
//! runnable thread proceeds. Blocking primitives park threads via
//! [`Rt::block_and_wait`] and wake them via [`Rt::wake_all`]; when nothing
//! is runnable the scheduler force-fires a timed waiter (modeling a
//! `wait_timeout` expiry) or reports a deadlock.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A panic payload carried out of a model thread.
pub(crate) type Payload = Box<dyn Any + Send + 'static>;

/// Message used to unwind parked threads when an execution is aborted
/// (deadlock, branch blowout); the wrapper recognizes and swallows it.
pub(crate) const ABORT_MSG: &str = "loom-internal: execution aborted";

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The runtime handle of the calling thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Emits one switch point for the calling thread if it is a model thread;
/// a no-op outside a model (fallback mode).
pub(crate) fn hit() {
    if let Some((rt, tid)) = current() {
        rt.switch(tid);
    }
}

/// Run states of a model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Parked with no self-wakeup (mutex, untimed condvar wait, join).
    Blocked,
    /// Parked in a `wait_timeout`: the scheduler may force an expiry.
    TimedWait,
    /// Exited (normally or by panic).
    Finished,
}

/// Per-thread bookkeeping.
pub(crate) struct ThreadSt {
    pub(crate) run: Run,
    /// Set when the last wakeup was a forced `wait_timeout` expiry.
    pub(crate) timed_out: bool,
    /// Threads parked in `join` on this one.
    pub(crate) joiners: Vec<usize>,
    /// Panic payload not yet claimed by a `join`.
    pub(crate) panic: Option<Payload>,
    name: Option<String>,
}

/// One recorded scheduling decision.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Branch {
    /// Index chosen among the options at this decision point.
    pub(crate) chosen: usize,
    /// Number of options that were available.
    pub(crate) options: usize,
}

/// Exploration limits (see the crate docs for the env knobs).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Config {
    pub(crate) max_preemptions: usize,
    pub(crate) max_branches: usize,
}

pub(crate) struct State {
    threads: Vec<ThreadSt>,
    /// The single thread currently allowed to run.
    active: usize,
    /// Next index into `path` (how many decisions this execution has made).
    depth: usize,
    /// The DFS path: replayed as a prefix, extended past its end.
    path: Vec<Branch>,
    preemptions: usize,
    branches: usize,
    /// All threads finished (or the execution was aborted).
    finished: bool,
    /// True while tearing down an aborted execution: parked threads unwind.
    abort: bool,
    /// Deadlock / divergence description, reported by the coordinator.
    failure: Option<String>,
    cfg: Config,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One execution's runtime: shared state plus the hand-off condvar.
pub(crate) struct Rt {
    state: Mutex<State>,
    cv: Condvar,
}

fn lock(rt: &Rt) -> std::sync::MutexGuard<'_, State> {
    // The state mutex is only poisoned if the coordinator itself panicked;
    // keep going so parked threads can still observe `abort`.
    rt.state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Rt {
    pub(crate) fn new(cfg: Config, path: Vec<Branch>) -> Rt {
        Rt {
            state: Mutex::new(State {
                threads: Vec::new(),
                active: 0,
                depth: 0,
                path,
                preemptions: 0,
                branches: 0,
                finished: false,
                abort: false,
                failure: None,
                cfg,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the chosen option index at a decision point with `n` options.
    fn choose(st: &mut State, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        st.branches += 1;
        if st.branches > st.cfg.max_branches {
            st.failure = Some(format!(
                "execution exceeded LOOM_MAX_BRANCHES ({}) scheduling decisions — \
                 the model likely has an unbounded loop",
                st.cfg.max_branches
            ));
            st.abort = true;
            st.finished = true;
            return 0;
        }
        let d = st.depth;
        st.depth += 1;
        if d < st.path.len() {
            let b = &mut st.path[d];
            // Cross-execution nondeterminism (e.g. a `static` registering
            // itself only on the first run) can shrink the option count;
            // clamp rather than crash — exploration degrades gracefully.
            b.options = n;
            if b.chosen >= n {
                b.chosen = n - 1;
            }
            b.chosen
        } else {
            st.path.push(Branch {
                chosen: 0,
                options: n,
            });
            0
        }
    }

    /// Core scheduling decision. Called with the lock held by the thread
    /// ceding control (`cur`); sets `State::active` to the next thread.
    fn reschedule(&self, st: &mut State, cur: usize, cur_runnable: bool) {
        let mut options: Vec<usize> = Vec::new();
        if cur_runnable {
            options.push(cur);
        }
        // Preemption bounding: once the budget is spent, a runnable thread
        // is never switched away from (options collapses to `[cur]`).
        if !cur_runnable || st.preemptions < st.cfg.max_preemptions {
            for tid in 0..st.threads.len() {
                if tid != cur && st.threads[tid].run == Run::Runnable {
                    options.push(tid);
                }
            }
        }
        if options.is_empty() {
            let timed: Vec<usize> = (0..st.threads.len())
                .filter(|&t| st.threads[t].run == Run::TimedWait)
                .collect();
            if !timed.is_empty() {
                // Nothing runnable: a `wait_timeout` expires. Which waiter
                // fires first is itself a scheduling decision.
                let idx = Self::choose(st, timed.len());
                let t = timed[idx];
                st.threads[t].run = Run::Runnable;
                st.threads[t].timed_out = true;
                st.active = t;
                self.cv.notify_all();
                return;
            }
            if st.threads.iter().all(|t| t.run == Run::Finished) {
                st.finished = true;
                self.cv.notify_all();
                return;
            }
            let states: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    format!(
                        "#{i}{}: {:?}",
                        t.name
                            .as_deref()
                            .map(|n| format!(" ({n})"))
                            .unwrap_or_default(),
                        t.run
                    )
                })
                .collect();
            st.failure = Some(format!("deadlock — thread states: [{}]", states.join(", ")));
            st.abort = true;
            st.finished = true;
            self.cv.notify_all();
            return;
        }
        let idx = Self::choose(st, options.len());
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let next = options[idx];
        if cur_runnable && next != cur {
            st.preemptions += 1;
        }
        if st.active != next {
            st.active = next;
            self.cv.notify_all();
        }
    }

    /// One switch point: cede control, wait until scheduled again.
    ///
    /// Skipped while the calling thread is unwinding — a panicking model
    /// thread (its payload is what the model reports) must not block, and
    /// a `Drop`-triggered switch during abort teardown must not
    /// double-panic.
    pub(crate) fn switch(self: &Arc<Self>, tid: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut st = lock(self);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        debug_assert_eq!(st.active, tid, "switch() from a non-active thread");
        self.reschedule(&mut st, tid, true);
        while !st.abort && st.active != tid {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            abort_unwind();
        }
    }

    /// Parks the calling thread (`Blocked`, or `TimedWait` when `timed`)
    /// until a wakeup schedules it again. Returns whether the wakeup was a
    /// forced timeout expiry.
    pub(crate) fn block_and_wait(self: &Arc<Self>, tid: usize, timed: bool) -> bool {
        let mut st = lock(self);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.threads[tid].run = if timed { Run::TimedWait } else { Run::Blocked };
        st.threads[tid].timed_out = false;
        self.reschedule(&mut st, tid, false);
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.threads[tid].run == Run::Runnable && st.active == tid {
                return st.threads[tid].timed_out;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks each thread in `tids` runnable (if parked). Does not switch —
    /// the waker keeps running until its own next switch point.
    pub(crate) fn wake_all(self: &Arc<Self>, tids: &[usize]) {
        if tids.is_empty() {
            return;
        }
        let mut st = lock(self);
        for &t in tids {
            if matches!(st.threads[t].run, Run::Blocked | Run::TimedWait) {
                st.threads[t].run = Run::Runnable;
                st.threads[t].timed_out = false;
            }
        }
    }

    /// Registers the calling thread as a joiner of `target`; parks until
    /// `target` finishes, then hands over its unclaimed panic payload.
    pub(crate) fn join(self: &Arc<Self>, tid: usize, target: usize) -> Option<Payload> {
        self.switch(tid);
        loop {
            {
                let mut st = lock(self);
                if st.abort {
                    drop(st);
                    abort_unwind();
                }
                if st.threads[target].run == Run::Finished {
                    return st.threads[target].panic.take();
                }
                st.threads[target].joiners.push(tid);
            }
            self.block_and_wait(tid, false);
        }
    }

    /// Spawns a model thread running `f`; returns its tid. The OS thread
    /// waits until the scheduler first activates it.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        f: impl FnOnce() + Send + 'static,
        name: Option<String>,
    ) -> usize {
        let tid = {
            let mut st = lock(self);
            st.threads.push(ThreadSt {
                run: Run::Runnable,
                timed_out: false,
                joiners: Vec::new(),
                panic: None,
                name: name.clone(),
            });
            st.threads.len() - 1
        };
        let rt = Arc::clone(self);
        let mut builder = std::thread::Builder::new();
        if let Some(n) = &name {
            builder = builder.name(format!("loom-{n}"));
        }
        let handle = builder
            .spawn(move || {
                set_current(Some((Arc::clone(&rt), tid)));
                // Wait to be scheduled for the first time.
                {
                    let mut st = lock(&rt);
                    while !st.abort && (st.active != tid || st.threads[tid].run != Run::Runnable) {
                        st = rt
                            .cv
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    if st.abort {
                        rt.finish_thread(tid, None);
                        return;
                    }
                }
                let outcome = catch_unwind(AssertUnwindSafe(f));
                let payload = match outcome {
                    Ok(()) => None,
                    Err(p) if p.downcast_ref::<&str>() == Some(&ABORT_MSG) => None,
                    Err(p) => Some(p),
                };
                rt.finish_thread(tid, payload);
            })
            .expect("loom: failed to spawn a model OS thread");
        lock(self).os_handles.push(handle);
        tid
    }

    /// Marks `tid` finished, stores its panic payload, wakes joiners, and
    /// hands control to the next thread.
    fn finish_thread(self: &Arc<Self>, tid: usize, payload: Option<Payload>) {
        let mut st = lock(self);
        st.threads[tid].run = Run::Finished;
        st.threads[tid].panic = payload;
        let joiners = std::mem::take(&mut st.threads[tid].joiners);
        for j in joiners {
            if matches!(st.threads[j].run, Run::Blocked | Run::TimedWait) {
                st.threads[j].run = Run::Runnable;
            }
        }
        if !st.abort {
            self.reschedule(&mut st, tid, false);
        }
    }

    /// Coordinator side: wait for the execution to end, join every OS
    /// thread, and extract `(path, failure, first unclaimed panic)`.
    pub(crate) fn wait_done_and_join(
        self: &Arc<Self>,
    ) -> (Vec<Branch>, Option<String>, Option<Payload>) {
        let handles = {
            let mut st = lock(self);
            while !st.finished {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut st = lock(self);
        let path = std::mem::take(&mut st.path);
        let failure = st.failure.take();
        let panic = st.threads.iter_mut().find_map(|t| t.panic.take());
        (path, failure, panic)
    }
}

/// Unwinds a parked thread out of an aborted execution.
fn abort_unwind() -> ! {
    std::panic::panic_any(ABORT_MSG)
}
