//! Shadow `std::sync`: model-aware locks, condvars and atomics.
//!
//! Inside a [`crate::model`] every operation is a scheduler switch point
//! and blocking is mediated by the model scheduler; outside a model every
//! type behaves exactly like its `std` counterpart (poisoning is the one
//! simplification: a model-mode lock never reports poison — a panicking
//! model thread already fails the whole model).

use crate::rt;
use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::{Arc, LockResult, TryLockError};

/// Shadow `std::sync::Mutex`.
///
/// Internally backed by a real `std` mutex for the data (uncontended in
/// model mode — the scheduler serializes threads) plus model-side owner /
/// waiter bookkeeping.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    meta: std::sync::Mutex<MutexMeta>,
    inner: std::sync::Mutex<T>,
}

#[derive(Debug, Default)]
struct MutexMeta {
    owner: Option<usize>,
    waiters: Vec<usize>,
}

/// Shadow `std::sync::MutexGuard`.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
    /// Whether this guard holds model-side ownership (and must release it).
    model: bool,
}

fn meta_lock(m: &std::sync::Mutex<MutexMeta>) -> std::sync::MutexGuard<'_, MutexMeta> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> Mutex<T> {
    /// Creates the mutex (const, unlike real loom — lets statics work).
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            meta: std::sync::Mutex::new(MutexMeta {
                owner: None,
                waiters: Vec::new(),
            }),
            inner: std::sync::Mutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Shadow `Mutex::lock`. Model mode never reports poison.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            Some((rt, tid)) => {
                rt.switch(tid);
                loop {
                    let acquired = {
                        let mut m = meta_lock(&self.meta);
                        if m.owner.is_none() {
                            m.owner = Some(tid);
                            true
                        } else {
                            m.waiters.push(tid);
                            false
                        }
                    };
                    if acquired {
                        break;
                    }
                    rt.block_and_wait(tid, false);
                }
                let std = match self.inner.try_lock() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("loom: model-owned mutex held at the std layer")
                    }
                };
                Ok(MutexGuard {
                    mutex: self,
                    std: Some(std),
                    model: true,
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    mutex: self,
                    std: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    mutex: self,
                    std: Some(p.into_inner()),
                    model: false,
                })),
            },
        }
    }

    /// Releases model-side ownership and wakes every model waiter. No
    /// switch point — callers add one where the semantics allow it.
    fn model_release(&self, rt: &Arc<rt::Rt>) {
        let waiters = {
            let mut m = meta_lock(&self.meta);
            m.owner = None;
            std::mem::take(&mut m.waiters)
        };
        rt.wake_all(&waiters);
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard holds the std lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard holds the std lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if self.model {
            if let Some((rt, tid)) = rt::current() {
                self.mutex.model_release(&rt);
                // Unlock is a visible operation (skipped while unwinding —
                // `Rt::switch` no-ops then).
                rt.switch(tid);
            }
        }
    }
}

/// Shadow `std::sync::WaitTimeoutResult`. (The std type has no public
/// constructor, hence the local mirror.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Shadow `std::sync::Condvar`.
///
/// In model mode a `wait_timeout` parks the thread as a *timed waiter*:
/// it wakes on notification like any waiter, and the scheduler force-fires
/// its timeout only when no thread is runnable (so spurious-timeout storms
/// cannot make executions unbounded, while lost-wakeup recovery paths are
/// still reachable).
#[derive(Debug, Default)]
pub struct Condvar {
    meta: std::sync::Mutex<CvMeta>,
    inner: std::sync::Condvar,
}

#[derive(Debug, Default)]
struct CvMeta {
    waiters: Vec<usize>,
}

impl Condvar {
    /// Creates the condvar (const, unlike real loom).
    pub const fn new() -> Condvar {
        Condvar {
            meta: std::sync::Mutex::new(CvMeta {
                waiters: Vec::new(),
            }),
            inner: std::sync::Condvar::new(),
        }
    }

    fn cv_meta(&self) -> std::sync::MutexGuard<'_, CvMeta> {
        self.meta.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Model-mode park: register, atomically release the mutex and block,
    /// then reacquire. Returns the reacquired guard plus the timeout flag.
    fn model_wait<'a, T: ?Sized>(
        &self,
        rt: Arc<rt::Rt>,
        tid: usize,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        // The wait call is itself a visible operation: another thread may be
        // scheduled *before* this one registers as a waiter (this is exactly
        // the window where an unsynchronized notify is lost — it must be
        // explorable for lost-wakeup bugs to be found).
        rt.switch(tid);
        let mutex = guard.mutex;
        self.cv_meta().waiters.push(tid);
        // Release without a switch point: registration, release and park
        // must be atomic with respect to other model threads, or a notify
        // arriving in between would be lost by the *model* rather than by
        // the code under test.
        guard.model = false;
        drop(guard.std.take());
        drop(guard);
        mutex.model_release(&rt);
        let timed_out = rt.block_and_wait(tid, timed);
        self.cv_meta().waiters.retain(|t| *t != tid);
        let guard = match mutex.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        (guard, timed_out)
    }

    /// Shadow `Condvar::wait`.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match rt::current() {
            Some((rt, tid)) => {
                let (g, _) = self.model_wait(rt, tid, guard, false);
                Ok(g)
            }
            None => {
                let mutex = guard.mutex;
                let mut guard = guard;
                let std = guard.std.take().expect("guard holds the std lock");
                drop(guard); // inert: the std guard has been moved out
                match self.inner.wait(std) {
                    Ok(g) => Ok(MutexGuard {
                        mutex,
                        std: Some(g),
                        model: false,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        mutex,
                        std: Some(p.into_inner()),
                        model: false,
                    })),
                }
            }
        }
    }

    /// Shadow `Condvar::wait_timeout`.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match rt::current() {
            Some((rt, tid)) => {
                let (g, timed_out) = self.model_wait(rt, tid, guard, true);
                Ok((g, WaitTimeoutResult(timed_out)))
            }
            None => {
                let mutex = guard.mutex;
                let mut guard = guard;
                let std = guard.std.take().expect("guard holds the std lock");
                drop(guard); // inert: the std guard has been moved out
                match self.inner.wait_timeout(std, dur) {
                    Ok((g, t)) => Ok((
                        MutexGuard {
                            mutex,
                            std: Some(g),
                            model: false,
                        },
                        WaitTimeoutResult(t.timed_out()),
                    )),
                    Err(p) => {
                        let (g, t) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                mutex,
                                std: Some(g),
                                model: false,
                            },
                            WaitTimeoutResult(t.timed_out()),
                        )))
                    }
                }
            }
        }
    }

    /// Shadow `Condvar::notify_all`.
    pub fn notify_all(&self) {
        match rt::current() {
            Some((rt, tid)) => {
                let waiters = std::mem::take(&mut self.cv_meta().waiters);
                rt.wake_all(&waiters);
                rt.switch(tid);
            }
            None => self.inner.notify_all(),
        }
    }

    /// Shadow `Condvar::notify_one`.
    pub fn notify_one(&self) {
        match rt::current() {
            Some((rt, tid)) => {
                let first = {
                    let mut m = self.cv_meta();
                    if m.waiters.is_empty() {
                        None
                    } else {
                        Some(m.waiters.remove(0))
                    }
                };
                if let Some(t) = first {
                    rt.wake_all(&[t]);
                }
                rt.switch(tid);
            }
            None => self.inner.notify_one(),
        }
    }
}

pub mod atomic {
    //! Shadow `std::sync::atomic`: every operation is a model switch point;
    //! orderings are accepted but executed as `SeqCst` (the model is
    //! sequentially consistent — see the crate docs).

    use crate::rt;
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    /// Shadow `std::sync::atomic::fence`: a switch point plus a real fence.
    pub fn fence(_order: Ordering) {
        rt::hit();
        std::sync::atomic::fence(SeqCst);
    }

    macro_rules! shadow_atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic (const, unlike real loom).
                pub const fn new(v: $ty) -> $name {
                    $name { inner: std::sync::atomic::$std::new(v) }
                }

                /// Shadow `load`.
                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.load(SeqCst)
                }

                /// Shadow `store`.
                pub fn store(&self, v: $ty, _order: Ordering) {
                    rt::hit();
                    self.inner.store(v, SeqCst)
                }

                /// Shadow `swap`.
                pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.swap(v, SeqCst)
                }

                /// Shadow `fetch_add`.
                pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.fetch_add(v, SeqCst)
                }

                /// Shadow `fetch_sub`.
                pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.fetch_sub(v, SeqCst)
                }

                /// Shadow `fetch_or`.
                pub fn fetch_or(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.fetch_or(v, SeqCst)
                }

                /// Shadow `fetch_and`.
                pub fn fetch_and(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.fetch_and(v, SeqCst)
                }

                /// Shadow `fetch_max`.
                pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.fetch_max(v, SeqCst)
                }

                /// Shadow `fetch_min`.
                pub fn fetch_min(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::hit();
                    self.inner.fetch_min(v, SeqCst)
                }

                /// Shadow `compare_exchange`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::hit();
                    self.inner.compare_exchange(current, new, SeqCst, SeqCst)
                }

                /// Shadow `compare_exchange_weak` (never fails spuriously —
                /// the model is sequentialized).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Shadow `into_inner`.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    shadow_atomic_int!(
        /// Shadow `std::sync::atomic::AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    shadow_atomic_int!(
        /// Shadow `std::sync::atomic::AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    shadow_atomic_int!(
        /// Shadow `std::sync::atomic::AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    shadow_atomic_int!(
        /// Shadow `std::sync::atomic::AtomicI64`.
        AtomicI64,
        AtomicI64,
        i64
    );

    /// Shadow `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic (const, unlike real loom).
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Shadow `load`.
        pub fn load(&self, _order: Ordering) -> bool {
            rt::hit();
            self.inner.load(SeqCst)
        }

        /// Shadow `store`.
        pub fn store(&self, v: bool, _order: Ordering) {
            rt::hit();
            self.inner.store(v, SeqCst)
        }

        /// Shadow `swap`.
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            rt::hit();
            self.inner.swap(v, SeqCst)
        }

        /// Shadow `compare_exchange`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            rt::hit();
            self.inner.compare_exchange(current, new, SeqCst, SeqCst)
        }
    }

    /// Shadow `std::sync::atomic::AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates the atomic (const, unlike real loom).
        pub const fn new(p: *mut T) -> AtomicPtr<T> {
            AtomicPtr {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        /// Shadow `load`.
        pub fn load(&self, _order: Ordering) -> *mut T {
            rt::hit();
            self.inner.load(SeqCst)
        }

        /// Shadow `store`.
        pub fn store(&self, p: *mut T, _order: Ordering) {
            rt::hit();
            self.inner.store(p, SeqCst)
        }

        /// Shadow `swap`.
        pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
            rt::hit();
            self.inner.swap(p, SeqCst)
        }

        /// Shadow `compare_exchange`.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::hit();
            self.inner.compare_exchange(current, new, SeqCst, SeqCst)
        }
    }
}
