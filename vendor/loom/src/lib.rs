//! Offline drop-in subset of the [`loom`](https://docs.rs/loom) 0.7 API.
//!
//! The build environment has no registry access, so — like the other
//! `vendor/` crates — this is an API-compatible subset implemented from
//! scratch. It is a *bounded systematic concurrency tester*: running a
//! closure under [`model`] executes it many times, exploring a different
//! thread interleaving on every iteration via depth-first search over
//! scheduling decisions, with the number of *preemptive* context switches
//! per execution bounded (preemption bounding is the classic CHESS
//! technique: almost all real schedule-sensitive bugs manifest with ≤ 2
//! preemptions).
//!
//! # How it differs from real loom
//!
//! * **Sequentially consistent semantics.** Threads are real OS threads,
//!   but a global scheduler lets exactly one run at a time and makes every
//!   operation on a `loom` type a possible switch point. Because execution
//!   is serialized, all atomics behave as `SeqCst`: the `Ordering` argument
//!   is accepted but not weakened, so this checker explores *interleavings*
//!   (lost updates, use-after-free windows, lost wakeups, deadlocks), not
//!   relaxed-memory reorderings. Pair it with Miri/TSan for the latter.
//! * **Bounded, not exhaustive.** Exploration stops at
//!   `LOOM_MAX_ITERATIONS` executions (default 50 000) even if the
//!   preemption-bounded tree is larger; a one-line summary says which.
//! * **Graceful outside a model.** Real loom panics if its types are used
//!   outside [`model`]; here every shadow type falls back to the equivalent
//!   `std` behavior, so a `--cfg loom` build of a whole crate (including
//!   code paths never exercised under a model) still runs correctly.
//! * **`const` constructors.** Shadow atomics and locks are
//!   const-constructible so `static` counters keep working under
//!   `--cfg loom` — a deliberate divergence from real loom (which requires
//!   `loom::lazy_static`).
//!
//! # Configuration (environment)
//!
//! * `LOOM_MAX_PREEMPTIONS` — preemption bound per execution (default 2).
//! * `LOOM_MAX_BRANCHES` — scheduling decisions per execution before the
//!   model is declared divergent (default 20 000).
//! * `LOOM_MAX_ITERATIONS` — executions explored before stopping early
//!   (default 50 000).
//!
//! # Failure reporting
//!
//! A panic inside the modeled closure (an assertion failure, an executor
//! invariant breach, …), a deadlock (every live thread blocked with no
//! timed waiter), or a branch-budget blowout aborts the run and re-raises
//! on the caller of [`model`], after printing how many executions had been
//! explored — the count identifies the failing schedule for replay-by-rerun.

#![deny(missing_docs)]

pub mod model;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder};

/// Mirrors `loom::hint`: spin-loop hints become plain yield points.
pub mod hint {
    /// Emits a scheduling switch point (the model equivalent of a spin
    /// hint: give every other thread a chance to run here).
    pub fn spin_loop() {
        crate::rt::hit();
    }
}
