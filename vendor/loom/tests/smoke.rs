//! Sanity checks for the vendored model checker itself: it must catch
//! planted interleaving bugs and pass their corrected counterparts.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` under the model and reports whether any schedule failed.
fn model_fails<F: Fn() + Send + Sync + 'static>(f: F) -> bool {
    catch_unwind(AssertUnwindSafe(|| loom::model(f))).is_err()
}

#[test]
fn catches_lost_update() {
    // Non-atomic read-modify-write: two threads each do load + store, so a
    // preemption between the two steps loses one increment.
    assert!(model_fails(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }));
}

#[test]
fn passes_atomic_rmw() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn catches_lost_wakeup_deadlock() {
    // The notifier flips an atomic flag and notifies *without holding the
    // lock*, and the waiter does not re-check in a loop: a notify landing
    // between the waiter's flag check and its wait registration is lost,
    // and the untimed wait deadlocks.
    use loom::sync::atomic::AtomicBool;
    assert!(model_fails(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let waiter = {
            let flag = Arc::clone(&flag);
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let g = lock.lock().unwrap();
                if !flag.load(Ordering::SeqCst) {
                    // BUG: the notify may fire right here, before this
                    // thread registers as a waiter.
                    drop(cv.wait(g).unwrap());
                }
            })
        };
        flag.store(true, Ordering::SeqCst);
        pair.1.notify_all();
        waiter.join().unwrap();
    }));
}

#[test]
fn passes_condvar_handshake() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut g = lock.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    });
}

#[test]
fn timed_wait_recovers_from_lost_wakeup() {
    // Same planted lost-wakeup as above, but with `wait_timeout`: when
    // nothing else is runnable the scheduler force-fires the timeout, so
    // the waiter re-checks the flag and terminates. No schedule may fail.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut g = lock.lock().unwrap();
                while !*g {
                    let (back, _timed_out) = cv
                        .wait_timeout(g, std::time::Duration::from_millis(1))
                        .unwrap();
                    g = back;
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    });
}

#[test]
fn propagates_child_panic_through_join() {
    assert!(model_fails(|| {
        let h = loom::thread::spawn(|| panic!("child boom"));
        h.join().unwrap();
    }));
}

#[test]
fn shadow_types_fall_back_to_std_outside_models() {
    // No model running here: every shadow type must behave like std.
    let n = AtomicUsize::new(1);
    assert_eq!(n.fetch_add(2, Ordering::Relaxed), 1);
    assert_eq!(n.load(Ordering::Acquire), 3);

    let m = Mutex::new(5u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);

    let h = loom::thread::spawn(|| 42);
    assert_eq!(h.join().unwrap(), 42);
}
