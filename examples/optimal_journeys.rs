//! Optimal journeys under the microscope: list every delay-optimal path of
//! a pair (the Pareto frontier with concrete routes), and relate snapshot
//! connectivity to the instant delivery the long-contact case allows.
//!
//! ```sh
//! cargo run --release --example optimal_journeys
//! ```

use opportunistic_diameter::prelude::*;
use opportunistic_diameter::temporal::connectivity;
use opportunistic_diameter::temporal::transform;

fn main() {
    let trace = transform::internal_universe(&Dataset::Infocom05.generate_days(0.5, 17));
    println!(
        "synthetic Infocom05 (12h): {} devices, {} contacts\n",
        trace.num_internal(),
        trace.num_contacts()
    );

    // Pick the busiest ordered pair and unfold its optimal journeys.
    let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());
    let (mut best, mut s, mut d) = (0usize, NodeId(0), NodeId(1));
    for a in 0..trace.num_internal() {
        for b in 0..trace.num_internal() {
            if a == b {
                continue;
            }
            let len = profiles
                .profile(NodeId(a), NodeId(b), HopBound::Unlimited)
                .len();
            if len > best {
                best = len;
                s = NodeId(a);
                d = NodeId(b);
            }
        }
    }
    let f = profiles.profile(s, d, HopBound::Unlimited);
    println!("pair {s} -> {d} has {} optimal journeys:", f.len());
    let journeys =
        optimal_journeys(&trace, s, d, &f).expect("trace-derived profiles always have witnesses");
    for (pair, path) in journeys.iter().take(10) {
        println!(
            "  leave by {:>9}  arrive {:>9}  {} hops: {}",
            pair.ld,
            pair.ea,
            path.hops(),
            route_string(path)
        );
    }
    if f.len() > 10 {
        println!("  … {} more", f.len() - 10);
    }

    // Snapshot connectivity across the day: when the giant component is
    // large, the long-contact case delivers (almost) instantly — the §3.2.3
    // "almost-simultaneously connected" regime.
    println!("\ngiant-component fraction over the day (every 2h):");
    for (t, frac) in connectivity::giant_component_series(&trace, 7) {
        let diam = connectivity::snapshot_diameter(&trace, t);
        println!(
            "  t = {:>9}  giant component {:>5.1}%  snapshot diameter {}",
            t,
            frac * 100.0,
            diam
        );
    }
    println!(
        "\nreading: during busy hours the instant graph concentrates into one\n\
         large, shallow component — contemporaneous multi-hop delivery — and\n\
         dissolves at night, when paths must store-and-forward across time."
    );
}
