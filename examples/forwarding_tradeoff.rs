//! The engineering payoff of the small-diameter result: hop-limited
//! epidemic forwarding loses almost nothing once the TTL reaches the
//! network diameter, while direct and two-hop schemes pay real delay and
//! success-rate costs.
//!
//! ```sh
//! cargo run --release --example forwarding_tradeoff
//! ```

use opportunistic_diameter::flooding::{
    direct_delivery, epidemic_ttl, evaluate_scheme, flood, two_hop_relay,
};
use opportunistic_diameter::prelude::*;
use opportunistic_diameter::temporal::transform;

fn main() {
    let trace = transform::internal_only(&Dataset::Infocom05.generate_days(1.0, 3));
    println!(
        "synthetic Infocom05 day 1: {} devices, {} contacts\n",
        trace.num_internal(),
        trace.num_contacts()
    );

    let samples = 16;
    let mut table = Table::new(["scheme", "success", "mean delay"]);
    let fmt = |s: opportunistic_diameter::flooding::SchemeStats| {
        (
            format!("{:.1}%", s.success_rate * 100.0),
            if s.mean_delay_secs.is_nan() {
                "-".to_string()
            } else {
                format!("{}", Dur::secs(s.mean_delay_secs))
            },
        )
    };

    let s = evaluate_scheme(&trace, samples, direct_delivery);
    let (succ, delay) = fmt(s);
    table.row(["direct delivery (1 hop)".to_string(), succ, delay]);

    let s = evaluate_scheme(&trace, samples, |t, a, b, t0| two_hop_relay(t, a, b, t0, 4));
    let (succ, delay) = fmt(s);
    table.row(["two-hop relay (4 copies)".to_string(), succ, delay]);

    for ttl in [2u32, 3, 4, 6] {
        let s = evaluate_scheme(&trace, samples, move |t, a, b, t0| {
            epidemic_ttl(t, a, b, t0, ttl)
        });
        let (succ, delay) = fmt(s);
        table.row([format!("epidemic, TTL {ttl}"), succ, delay]);
    }

    let s = evaluate_scheme(&trace, samples, |t, a, b, t0| {
        flood(t, a, t0, None).delivery(b)
    });
    let (succ, delay) = fmt(s);
    table.row(["epidemic, unlimited".to_string(), succ, delay]);

    println!("{}", table.render());
    println!(
        "once the TTL reaches the network diameter (4-6 hops), hop-limited\n\
         epidemic matches unlimited flooding: messages can be discarded after\n\
         a few hops at marginal cost (paper, conclusion)."
    );
}
