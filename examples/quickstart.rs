//! Quickstart: build a small temporal network by hand, compute every
//! delay-optimal path, query the delivery function, and measure the
//! (1−ε)-diameter.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use opportunistic_diameter::prelude::*;

fn main() {
    // Five commuters over one morning. Contacts are undirected intervals
    // [start, end] in seconds.
    let trace = TraceBuilder::new()
        .contact_secs(0, 1, 0.0, 600.0) // alice–bob share a bus
        .contact_secs(1, 2, 300.0, 900.0) // bob–carol overlap at the station
        .contact_secs(2, 3, 2_000.0, 2_600.0) // carol–dave at the office
        .contact_secs(3, 4, 2_400.0, 3_000.0) // dave–erin at the coffee machine
        .contact_secs(0, 4, 5_000.0, 5_300.0) // alice–erin much later
        .build();
    println!(
        "trace: {} nodes, {} contacts over {}",
        trace.num_nodes(),
        trace.num_contacts(),
        trace.span().duration()
    );

    // All delay-optimal paths for every ordered pair and hop class at once.
    let profiles = AllPairsProfiles::compute(&trace, ProfileOptions::default());

    // The delivery function 0 -> 4: every Pareto-optimal (last-departure,
    // earliest-arrival) pair.
    let f = profiles.profile(NodeId(0), NodeId(4), HopBound::Unlimited);
    println!("\ndelivery function 0 -> 4 ({} optimal paths):", f.len());
    for p in f.pairs() {
        println!("  leave by {:>8}  arrive at {:>8}", p.ld, p.ea);
    }
    for t0 in [0.0, 400.0, 1_000.0, 4_900.0, 5_400.0] {
        let t = Time::secs(t0);
        println!("  message at {:>8} delivered {:>8}", t, f.delivery(t));
    }

    // A concrete witness path from the single-query engine.
    let tree = earliest_arrival(&trace, NodeId(0), Time::ZERO);
    let path = tree.path_to(&trace, NodeId(4)).expect("reachable");
    let names = ["alice", "bob", "carol", "dave", "erin"];
    let route: Vec<&str> = path.nodes().iter().map(|n| names[n.index()]).collect();
    println!("\nearliest-arrival route 0 -> 4: {}", route.join(" -> "));
    println!(
        "  {} hops, arriving {}",
        path.hops(),
        tree.arrival(NodeId(4))
    );

    // The network diameter at 99% of flooding.
    let grid: Vec<Dur> = log_grid(60.0, 6_000.0, 16)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let curves = SuccessCurves::compute(&trace, &CurveOptions::standard(4, grid));
    match curves.diameter(0.01) {
        Some(d) => println!("\n99%-diameter of this network: {d} hops"),
        None => println!("\n99%-diameter exceeds the evaluated hop classes"),
    }
}
