//! Contact-removal study (the §6 methodology): how random removal and
//! duration filtering change delay and diameter on a busy conference day.
//!
//! ```sh
//! cargo run --release --example contact_pruning
//! ```

use opportunistic_diameter::prelude::*;
use opportunistic_diameter::temporal::transform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measure(trace: &Trace, grid: &[Dur]) -> (Vec<f64>, Option<usize>) {
    let curves = SuccessCurves::compute(trace, &CurveOptions::standard(8, grid.to_vec()));
    let flood = curves.curve(HopBound::Unlimited).unwrap().to_vec();
    (flood, curves.diameter(0.01))
}

fn main() {
    // Day 2 of the synthetic Infocom06 trace, internal contacts only.
    let full = Dataset::Infocom06.generate_days(2.0, 7);
    let day2 = transform::crop(
        &transform::internal_only(&full),
        Interval::new(Time::ZERO + Dur::days(1.0), Time::ZERO + Dur::days(2.0)),
    );
    println!(
        "Infocom06 (synthetic) day 2: {} contacts among {} devices\n",
        day2.num_contacts(),
        day2.num_internal()
    );

    let grid: Vec<Dur> = log_grid(120.0, 86_400.0, 10)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let labels: Vec<String> = grid.iter().map(|d| format!("{d}")).collect();

    let mut table = Table::new(
        std::iter::once("scenario".to_string())
            .chain(labels.iter().cloned())
            .chain(std::iter::once("diam".to_string())),
    );
    let mut add_row = |name: &str, trace: &Trace| {
        let (flood, diam) = measure(trace, &grid);
        let mut row = vec![name.to_string()];
        row.extend(flood.iter().map(|v| format!("{:.3}", v)));
        row.push(diam.map_or("->8".into(), |d| d.to_string()));
        table.row(row);
    };

    add_row("original", &day2);

    // §6.1: random removal, averaged presentation replaced by one seeded
    // draw per probability (the harness averages over 5 seeds).
    let mut rng = StdRng::seed_from_u64(1);
    for p in [0.9, 0.99] {
        let pruned = transform::remove_random(&day2, p, &mut rng);
        add_row(&format!("random keep {:.0}%", (1.0 - p) * 100.0), &pruned);
    }

    // §6.2: duration thresholds.
    for mins in [2.0, 10.0, 30.0] {
        let filtered = transform::min_duration(&day2, Dur::mins(mins));
        add_row(&format!("duration >= {mins:.0} min"), &filtered);
    }

    println!("flooding success P[delay <= x] and 99%-diameter per scenario:");
    println!("{}", table.render());
    println!(
        "expected shape (paper §6): random removal degrades delay but leaves\n\
         the diameter small; dropping short contacts preserves short-delay\n\
         paths yet can *increase* the diameter."
    );
}
