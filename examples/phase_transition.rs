//! The §3 phase transition, analytically and empirically: prints the phase
//! boundary functions of Figures 1–2, probes both phases by Monte Carlo, and
//! checks the Figure-3 hop-count prediction at one contact rate.
//!
//! ```sh
//! cargo run --release --example phase_transition
//! ```

use opportunistic_diameter::prelude::*;
use opportunistic_diameter::random::montecarlo::budgets;
use opportunistic_diameter::random::{constrained_path_probability, estimate_optimal_path, theory};

fn main() {
    // Figure 1/2 style: the phase function for three contact rates.
    for case in [ContactCase::Short, ContactCase::Long] {
        println!("phase function gamma*ln(lambda) + f(gamma) ({case:?} contacts):");
        let gammas: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
        let mut series = Series::new("gamma", gammas.clone());
        for lambda in [0.5, 1.0, 1.5] {
            series.curve(
                format!("lambda={lambda}"),
                gammas
                    .iter()
                    .map(|&g| theory::phase_value(case, lambda, g))
                    .collect(),
            );
        }
        println!("{}", series.render());
    }

    // Probe both phases empirically (short contacts, λ = 1).
    let n = 600;
    let lambda = 1.0;
    let model = DiscreteModel::new(n, lambda);
    let case = ContactCase::Short;
    let m = theory::phase_maximum(case, lambda).unwrap();
    let gs = theory::gamma_star(case, lambda).unwrap();
    println!(
        "short contacts, lambda = {lambda}: critical tau = 1/M = {:.3}",
        1.0 / m
    );
    for (label, tau) in [("subcritical", 0.5 / m), ("supercritical", 2.5 / m)] {
        let (t, k) = budgets(n, tau, gs);
        let p = constrained_path_probability(model, case, t, k, 200, 11);
        println!(
            "  {label}: tau = {tau:.2} -> budgets t = {t} slots, k = {k} hops: \
             P[path] = {p:.2}"
        );
    }

    // Figure 3 check: hop count of the delay-optimal path, normalized by ln N.
    println!("\nhop count of the delay-optimal path / ln N (theory vs simulation):");
    let mut table = Table::new(["lambda", "theory short", "measured short"]);
    for lambda in [0.25, 0.5, 1.0, 2.0] {
        let est = estimate_optimal_path(DiscreteModel::new(1000, lambda), case, 400, 30, 5);
        table.row([
            format!("{lambda}"),
            format!("{:.3}", theory::hop_coefficient(case, lambda)),
            format!("{:.3}", est.hop_coefficient),
        ]);
    }
    println!("{}", table.render());
    println!("(finite-size effects at N = 1000 keep measured values within tens of percent)");
}
