//! Conference scenario: generate the synthetic Infocom05 trace, reproduce a
//! Figure-9-style delay CDF per hop class, and report the 99%-diameter.
//!
//! ```sh
//! cargo run --release --example conference_diameter           # 1 day slice
//! cargo run --release --example conference_diameter -- --full # all 3 days
//! ```

use opportunistic_diameter::prelude::*;
use opportunistic_diameter::temporal::stats::TraceStats;
use opportunistic_diameter::temporal::transform;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let trace = if full {
        Dataset::Infocom05.generate(42)
    } else {
        Dataset::Infocom05.generate_days(1.0, 42)
    };
    let internal = transform::internal_only(&trace);

    let s = TraceStats::of(&internal);
    println!(
        "synthetic Infocom05{}: {} devices, {} internal contacts over {}",
        if full { "" } else { " (day 1)" },
        s.internal_devices,
        s.internal_contacts,
        s.duration
    );
    println!(
        "contact rate: {:.1} contacts per device-hour\n",
        s.internal_rate_per_node_hour
    );

    // Delay CDF from 2 minutes to the trace length, hop classes 1..6 and
    // flooding — the shape of Figure 9(a).
    let horizon = s.duration.as_secs();
    let grid: Vec<Dur> = log_grid(120.0, horizon, 20)
        .into_iter()
        .map(Dur::secs)
        .collect();
    let curves = SuccessCurves::compute(&internal, &CurveOptions::standard(6, grid.clone()));

    let mut series = Series::new(
        "delay",
        grid.iter().map(|d| d.as_secs()).collect::<Vec<_>>(),
    );
    for k in [1usize, 2, 3, 4] {
        series.curve(
            format!("{k} hop"),
            curves.curve(HopBound::AtMost(k)).unwrap().to_vec(),
        );
    }
    series.curve(
        "flooding",
        curves.curve(HopBound::Unlimited).unwrap().to_vec(),
    );
    println!("P[delay <= x] by hop class:");
    println!("{}", series.render());

    match curves.diameter(0.01) {
        Some(d) => println!("99%-diameter: {d} hops (paper reports 4-6 across data sets)"),
        None => println!("99%-diameter exceeds 6 hops on this instance"),
    }
}
